"""Query-to-raw-filter compilation (the design flow of §III-D).

Step i — extract search strings and value ranges from the query;
step ii — select candidate primitives and parameters (block lengths B);
step iii — determine the legal combinations:

* a condition's primitives may be combined structurally (``{s & v}``) or
  not (``s & v``);
* inside the query's AND, any subset of conditions may be *omitted*
  entirely (raw filters only need to over-approximate), as long as at
  least one primitive remains;
* OR-connected conditions could never be dropped — the RiotBench queries
  are pure conjunctions, so that rule is enforced by construction here.

Step iv (design-space exploration) lives in
:mod:`repro.core.design_space`.
"""

from __future__ import annotations

from ..errors import QueryError
from . import composition as comp
from .string_match import FULL

#: the paper's recommended search space for block lengths (§III-A):
#: B=1 (cheapest), B=2 (fixes short-string collisions), B=N (exact)
DEFAULT_BLOCKS = (1, 2, FULL)


class ConditionOption:
    """One way to (partially) realise a query condition as raw filters."""

    __slots__ = ("label", "atoms", "uses_string", "uses_value", "block")

    def __init__(self, label, atoms, uses_string, uses_value, block=None):
        self.label = label
        self.atoms = tuple(atoms)
        self.uses_string = uses_string
        self.uses_value = uses_value
        self.block = block

    @property
    def is_omit(self):
        return not self.atoms

    @property
    def attribute_count(self):
        return 0 if self.is_omit else 1

    def notation(self):
        if self.is_omit:
            return "-"
        return " & ".join(atom.notation() for atom in self.atoms)

    def __repr__(self):
        return f"ConditionOption({self.label})"


def string_primitive(condition, block):
    """The sB / sN matcher for a condition's attribute name."""
    return comp.StringPredicate(condition.attribute, block)


def value_primitive(condition):
    """The v(l <= x <= u) matcher for a condition's range."""
    return comp.NumberPredicate(
        condition.lo, condition.hi, kind=condition.kind
    )


def condition_options(condition, blocks=DEFAULT_BLOCKS,
                      include_omit=True, include_string_only=False,
                      include_value_only=True,
                      include_structural=True,
                      include_nonstructural=True):
    """All candidate realisations of one range condition.

    For each block length B: the bare string matcher, the conjunction
    ``sB & v`` (record-level), and the structural group ``{sB & v}``.
    Plus the bare value filter and full omission.
    """
    options = []
    if include_omit:
        options.append(ConditionOption("omit", [], False, False))
    if include_value_only:
        options.append(
            ConditionOption(
                "value", [value_primitive(condition)], False, True
            )
        )
    for block in blocks:
        string_atom = string_primitive(condition, block)
        if include_string_only:
            options.append(
                ConditionOption(
                    f"string[B={block}]", [string_atom], True, False,
                    block=block,
                )
            )
        if include_nonstructural:
            options.append(
                ConditionOption(
                    f"string+value[B={block}]",
                    [string_atom, value_primitive(condition)],
                    True,
                    True,
                    block=block,
                )
            )
        if include_structural:
            options.append(
                ConditionOption(
                    f"group[B={block}]",
                    [comp.Group([string_atom, value_primitive(condition)])],
                    True,
                    True,
                    block=block,
                )
            )
    return options


def config_expression(options):
    """Compose selected per-condition options into one raw filter."""
    atoms = []
    for option in options:
        atoms.extend(option.atoms)
    if not atoms:
        raise QueryError(
            "a raw filter must keep at least one primitive (§III-D iii.b)"
        )
    if len(atoms) == 1:
        return atoms[0]
    return comp.And(atoms)


def paper_pareto_expression(query, spec):
    """Build a named configuration like the rows of Tables V-VII.

    ``spec`` is a list of entries, one per kept attribute:
    ``("group", attribute, block)``, ``("pair", attribute, block)``,
    ``("value", attribute)`` or ``("string", attribute, block)``.
    """
    by_attr = {c.attribute: c for c in query.conditions}
    atoms = []
    for entry in spec:
        kind = entry[0]
        condition = by_attr[entry[1]]
        if kind == "value":
            atoms.append(value_primitive(condition))
        elif kind == "string":
            atoms.append(string_primitive(condition, entry[2]))
        elif kind == "pair":
            atoms.append(string_primitive(condition, entry[2]))
            atoms.append(value_primitive(condition))
        elif kind == "group":
            atoms.append(
                comp.Group(
                    [
                        string_primitive(condition, entry[2]),
                        value_primitive(condition),
                    ]
                )
            )
        else:
            raise QueryError(f"unknown spec entry {entry!r}")
    return atoms[0] if len(atoms) == 1 else comp.And(atoms)
