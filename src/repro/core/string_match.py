"""Behavioural models of the three string-matching techniques (§III-A).

These models are *bit-exact* with the circuits in
:mod:`repro.hw.circuits.string_circuits` (the test suite asserts this on
random streams) but operate on whole byte arrays with numpy, so they can
evaluate datasets at Python speed.

All functions operate on a numpy ``uint8`` array which may contain many
newline-separated records; because no needle ever contains a newline, the
separator naturally breaks windows and runs, so per-record reductions can
be done afterwards with ``np.logical_or.reduceat``.
"""

from __future__ import annotations

import functools

import numpy as np

from ..errors import ReproError

#: sentinel block value for the paper's technique (ii), "B = N"
FULL = "N"
#: sentinel block value for the paper's technique (i), the char-per-cycle DFA
DFA_TECHNIQUE = "dfa"


def as_needle_bytes(needle):
    if isinstance(needle, bytes):
        data = needle
    else:
        data = str(needle).encode("utf-8")
    if not data:
        raise ReproError("empty search string")
    if b"\n" in data:
        raise ReproError("needles may not contain record separators")
    return data


def substrings(needle, block):
    """The B-grams of a needle in order (paper Table IV), duplicates kept."""
    data = as_needle_bytes(needle)
    if not 1 <= block <= len(data):
        raise ReproError(f"block {block} out of range for {data!r}")
    return [data[i : i + block] for i in range(len(data) - block + 1)]


@functools.lru_cache(maxsize=4096)
def _unique_substrings_cached(needle_bytes, block):
    seen = []
    for gram in substrings(needle_bytes, block):
        if gram not in seen:
            seen.append(gram)
    return tuple(seen)


def unique_substrings(needle, block):
    """Distinct B-grams (what the hardware actually compares against).

    Memoised per (needle, block): streaming evaluation re-derives the
    gram set for every chunk batch otherwise.
    """
    return list(_unique_substrings_cached(as_needle_bytes(needle), block))


def resolve_block(needle, block):
    """Normalise a block spec: int, FULL ("N"), or DFA_TECHNIQUE."""
    data = as_needle_bytes(needle)
    if block == FULL:
        return len(data)
    if block == DFA_TECHNIQUE:
        return DFA_TECHNIQUE
    block = int(block)
    if not 1 <= block <= len(data):
        raise ReproError(f"block {block} out of range for {data!r}")
    return block


def window_hit_array(arr, needle, block):
    """Per-position "window equals some B-gram" booleans.

    Position ``i`` refers to the window consisting of bytes
    ``arr[i-block+1 .. i]``; positions with ``i < block-1`` compare against
    an implicit zero prefix, matching the hardware's zero-initialised
    buffer registers (NUL never appears in a needle, so those windows
    simply miss).
    """
    data = as_needle_bytes(needle)
    block = int(block)
    grams = _unique_substrings_cached(data, block)
    n = arr.shape[0]
    hit = np.zeros(n, dtype=bool)
    shifted = []
    for age in range(block):
        if age == 0:
            shifted.append(arr)
        else:
            lagged = np.zeros(n, dtype=arr.dtype)
            lagged[age:] = arr[:-age]
            shifted.append(lagged)
    for gram in grams:
        gram_hit = np.ones(n, dtype=bool)
        for age, expected in enumerate(reversed(gram)):
            gram_hit &= shifted[age] == expected
        hit |= gram_hit
    return hit


def run_lengths(hits):
    """Length of the True-run ending at each position (0 where False)."""
    n = hits.shape[0]
    index = np.arange(n, dtype=np.int64)
    last_false = np.maximum.accumulate(np.where(~hits, index, -1))
    return np.where(hits, index - last_false, 0)


def fire_array(arr, needle, block):
    """Cycle-accurate ``fire`` output of a matcher over a byte array.

    ``block`` may be an int, :data:`FULL`, or :data:`DFA_TECHNIQUE`.  For
    the DFA technique the accept state is absorbing, so ``fire`` stays
    high from the first occurrence onwards — but note record boundaries
    are *not* handled here for the DFA case; use the per-record APIs for
    it (the evaluation harness never places DFA matchers inside
    structural groups, mirroring the paper's design space).
    """
    data = as_needle_bytes(needle)
    resolved = resolve_block(data, block)
    if resolved == DFA_TECHNIQUE:
        exact = fire_array(arr, data, FULL)
        return np.maximum.accumulate(exact)
    hits = window_hit_array(arr, data, resolved)
    threshold = len(data) - resolved + 1
    return run_lengths(hits) >= threshold


def record_match_array(arr, starts, needle, block):
    """Per-record match booleans for a concatenated record stream.

    Args:
        arr: uint8 array of newline-terminated records.
        starts: int array of record start offsets.
    """
    data = as_needle_bytes(needle)
    resolved = resolve_block(data, block)
    if resolved == DFA_TECHNIQUE or resolved == len(data):
        # both techniques are exact: per-record result == substring find
        fires = fire_array(arr, data, FULL)
    else:
        fires = fire_array(arr, data, resolved)
    return np.logical_or.reduceat(fires, starts)


def record_matches(data, needle, block):
    """Scalar reference: does one record match?

    For exact techniques this is plain substring containment; for the
    approximate matcher it is the run-counter semantics.
    """
    needle_bytes = as_needle_bytes(needle)
    resolved = resolve_block(needle_bytes, block)
    if resolved == DFA_TECHNIQUE or resolved == len(needle_bytes):
        return needle_bytes in bytes(data)
    return bool(
        fire_array(
            np.frombuffer(bytes(data), dtype=np.uint8),
            needle_bytes,
            resolved,
        ).any()
    )


def reference_fire_trace(data, needle, block):
    """Pure-Python per-cycle fire trace (the test oracle for gate-level).

    Implements the counter semantics byte by byte, with the window
    initialised to zeros, exactly like the circuit.
    """
    needle_bytes = as_needle_bytes(needle)
    resolved = resolve_block(needle_bytes, block)
    stream = bytes(data)
    if resolved == DFA_TECHNIQUE:
        seen = False
        trace = []
        for position in range(len(stream)):
            if not seen and stream[: position + 1].endswith(needle_bytes):
                seen = True
            trace.append(seen)
        return trace
    grams = set(substrings(needle_bytes, resolved))
    threshold = len(needle_bytes) - resolved + 1
    window = [0] * resolved
    run = 0
    trace = []
    for byte in stream:
        window = [byte] + window[:-1]
        window_bytes = bytes(reversed(window))
        if window_bytes in grams:
            run = min(run + 1, threshold)
        else:
            run = 0
        trace.append(run >= threshold)
    return trace
