"""Design-space exploration (paper §III-D step iv, Fig. 3, Tables V-VII).

The space for a query with k conditions and block lengths {1, 2, N} has,
per condition: omit, value-only, three record-level string+value pairs
and three structural groups (8 options; 11 when bare string matchers are
also enabled via ``include_string_only`` — the paper's reported fronts
contain none, so they are off by default).  For the RiotBench queries
(k = 5) that is 8^5 - 1 = 32,767 raw filters (161,050 with bare
strings) — the paper evaluates all of them ("brute force"), and so do we:

* atom FPR arrays come from phase-1 vectorised evaluation and are
  *bit-packed*; a configuration's FPR costs a few bitwise-AND +
  popcount operations on ~500-byte arrays;
* LUT costs use the additive per-atom model
  (:func:`repro.core.cost.estimate_luts`), with exact synthesis re-run
  for the Pareto points that get reported.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..eval.harness import DatasetView
from ..eval.pareto import DesignPoint, pareto_front
from . import cost as cost_model
from .compiler import (
    DEFAULT_BLOCKS,
    condition_options,
    config_expression,
)

_POPCOUNT8 = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.int64
)


def _packed(mask):
    return np.packbits(mask.astype(bool))


def _popcount(packed):
    return int(_POPCOUNT8[packed].sum())


class ExploredPoint:
    """One evaluated configuration (lighter than building its AST)."""

    __slots__ = ("choice", "fpr", "luts", "num_attributes")

    def __init__(self, choice, fpr, luts, num_attributes):
        self.choice = choice
        self.fpr = fpr
        self.luts = luts
        self.num_attributes = num_attributes

    def __repr__(self):
        return (
            f"ExploredPoint(fpr={self.fpr:.3f}, luts={self.luts}, "
            f"attrs={self.num_attributes})"
        )


class DesignSpace:
    """Enumerate and evaluate every raw-filter configuration of a query."""

    def __init__(self, query, dataset, blocks=DEFAULT_BLOCKS,
                 include_string_only=False, engine=None):
        self.query = query
        self.blocks = blocks
        self.options = [
            condition_options(
                condition,
                blocks=blocks,
                include_string_only=include_string_only,
            )
            for condition in query.conditions
        ]
        if engine is None:
            # deferred: repro.core loads before repro.engine can
            from ..engine import default_engine

            engine = default_engine()
        #: corpora may arrive as any engine ingest object (a chunk
        #: source, raw NDJSON bytes, a binary handle) — framed into a
        #: Dataset by the engine's ingest layer before evaluation
        self.dataset = engine.ingest(dataset, name="design-space")
        dataset = self.dataset
        #: the shared execution layer running phase-1 atom evaluation;
        #: with an AtomCache attached, queries sharing atoms over the
        #: same corpus reuse each other's masks
        self.engine = engine
        self.truth = query.truth_array(dataset)
        self._option_masks = None
        self._view = None

    @property
    def view(self):
        """Vectorised view of the corpus, shared via the engine's cache."""
        if self._view is None:
            cache = getattr(self.engine, "atom_cache", None)
            if cache is not None:
                self._view = cache.view_for(self.dataset)
            else:
                self._view = DatasetView(self.dataset)
        return self._view

    # -- phase 1 ------------------------------------------------------------

    def _prepare(self):
        """Evaluate every distinct atom once; pack per-option masks."""
        if self._option_masks is not None:
            return
        atoms = []
        seen = set()
        for condition_opts in self.options:
            for option in condition_opts:
                for atom in option.atoms:
                    key = atom.cache_key()
                    if key not in seen:
                        seen.add(key)
                        atoms.append(atom)
        results = self.engine.evaluate_atoms(self.dataset, atoms)
        self._option_masks = []
        for condition_opts in self.options:
            masks = []
            for option in condition_opts:
                mask = np.ones(len(self.dataset), dtype=bool)
                for atom in option.atoms:
                    mask &= results[atom.cache_key()]
                masks.append(_packed(mask))
            self._option_masks.append(masks)
        self._negatives = _packed(~self.truth)
        self._negative_count = _popcount(self._negatives)

    # -- enumeration ----------------------------------------------------------

    def num_configurations(self):
        total = 1
        for condition_opts in self.options:
            total *= len(condition_opts)
        return total - 1  # minus the all-omit configuration

    def iter_choices(self):
        """Yield tuples of per-condition option indices (skip all-omit)."""
        ranges = [range(len(opts)) for opts in self.options]
        for choice in itertools.product(*ranges):
            if all(
                self.options[i][index].is_omit
                for i, index in enumerate(choice)
            ):
                continue
            yield choice

    def choice_options(self, choice):
        return [
            self.options[i][index] for i, index in enumerate(choice)
        ]

    def choice_expression(self, choice):
        return config_expression(self.choice_options(choice))

    def choice_atoms(self, choice):
        atoms = []
        for option in self.choice_options(choice):
            atoms.extend(option.atoms)
        return atoms

    # -- evaluation ----------------------------------------------------------

    def evaluate_choice(self, choice):
        """(fpr, estimated_luts, num_attributes) for one configuration."""
        self._prepare()
        accepted = None
        attributes = 0
        for index, option_index in enumerate(choice):
            option = self.options[index][option_index]
            if option.is_omit:
                continue
            attributes += 1
            mask = self._option_masks[index][option_index]
            if accepted is None:
                accepted = mask.copy()
            else:
                np.bitwise_and(accepted, mask, out=accepted)
        if accepted is None:
            # every selected option is omit: the (degenerate) filter
            # accepts everything, so all negatives pass
            fpr = 1.0 if self._negative_count else 0.0
            return fpr, 0, 0
        fp = _popcount(np.bitwise_and(accepted, self._negatives))
        fpr = fp / self._negative_count if self._negative_count else 0.0
        luts = cost_model.estimate_luts(self.choice_atoms(choice))
        return fpr, luts, attributes

    def explore(self, limit=None):
        """Evaluate the whole space; returns a list of ExploredPoint."""
        self._prepare()
        points = []
        for count, choice in enumerate(self.iter_choices()):
            if limit is not None and count >= limit:
                break
            fpr, luts, attributes = self.evaluate_choice(choice)
            points.append(ExploredPoint(choice, fpr, luts, attributes))
        return points

    # -- reporting ------------------------------------------------------------

    def pareto(self, points=None, epsilon=1e-9, exact_luts=True):
        """Pareto-optimal configurations as DesignPoints (Tables V-VII).

        With ``exact_luts`` the reported points are re-synthesised as one
        composed circuit each, replacing the additive estimate.
        """
        if points is None:
            points = self.explore()
        design_points = [
            DesignPoint(
                None,
                point.fpr,
                point.luts,
                meta={
                    "choice": point.choice,
                    "num_attributes": point.num_attributes,
                },
            )
            for point in points
        ]
        front = pareto_front(design_points, epsilon=epsilon)
        resolved = []
        for point in front:
            expr = self.choice_expression(point.meta["choice"])
            luts = point.luts
            if exact_luts:
                luts = cost_model.exact_luts(expr)
            resolved.append(
                DesignPoint(expr, point.fpr, luts, meta=point.meta)
            )
        # exact synthesis can reorder points; re-filter for dominance
        return pareto_front(resolved, epsilon=epsilon)
