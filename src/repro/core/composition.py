"""Raw-filter composition (paper §III, notation of Tables V–VII).

A raw filter is an expression tree over primitives:

* :class:`StringPredicate` — ``sB("needle")`` with ``B`` an int, ``"N"``
  (full-length comparison, technique ii) or ``"dfa"`` (technique i);
* :class:`NumberPredicate` — ``v(l <= i <= u)`` / ``v(l <= f <= u)``;
* :class:`RegexPredicate` — an arbitrary-regex filter (e.g. date formats,
  which the paper notes the same DFA machinery supports);
* :class:`Group` — ``{ RF1 & RF2 }``: children must fire in the same
  structural scope (§III-C);
* :class:`And` / :class:`Or` — record-level conjunction / disjunction.

The tree renders to the paper's notation (:meth:`RawFilter.notation`),
evaluates records behaviourally (:func:`evaluate_record`), and lowers to
hardware via :func:`repro.hw.circuits.build_raw_filter_circuit`.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError
from . import string_match
from .number_filter import NumberRangeFilter
from .structural import group_matches_record


class RawFilter:
    """Base class for raw-filter expression nodes."""

    def notation(self):
        """Render in the paper's notation (Tables V-VII)."""
        raise NotImplementedError

    def cache_key(self):
        """A hashable identity used by the evaluation harness."""
        raise NotImplementedError

    def primitives(self):
        """Iterate all primitive leaves in the tree."""
        raise NotImplementedError

    def atoms(self):
        """Iterate the cacheable evaluation units (leaves and groups)."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}<{self.notation()}>"

    def __eq__(self, other):
        return (
            type(self) is type(other) and self.cache_key() == other.cache_key()
        )

    def __hash__(self):
        return hash(self.cache_key())


class Primitive(RawFilter):
    """A leaf filter with per-cycle fire semantics."""

    def fire_array(self, arr):
        """Per-cycle fire booleans over one newline-terminated record."""
        raise NotImplementedError

    def matches_record(self, data):
        """Record-level accept for one record (bytes)."""
        raise NotImplementedError

    def primitives(self):
        yield self

    def atoms(self):
        yield self


class StringPredicate(Primitive):
    """``sB("needle")`` — one of the three string-matching techniques."""

    def __init__(self, needle, block=1):
        self.needle = string_match.as_needle_bytes(needle)
        if block not in (string_match.FULL, string_match.DFA_TECHNIQUE):
            block = int(block)
            if not 1 <= block <= len(self.needle):
                raise QueryError(
                    f"block {block} out of range for {self.needle!r}"
                )
        self.block = block

    @property
    def text(self):
        return self.needle.decode("latin1")

    def notation(self):
        if self.block == string_match.FULL:
            return f'sN("{self.text}")'
        if self.block == string_match.DFA_TECHNIQUE:
            return f'dfa("{self.text}")'
        return f's{self.block}("{self.text}")'

    def cache_key(self):
        return ("string", self.needle, self.block)

    def fire_array(self, arr):
        return string_match.fire_array(arr, self.needle, self.block)

    def matches_record(self, data):
        return string_match.record_matches(data, self.needle, self.block)


class NumberPredicate(Primitive):
    """``v(l <= i <= u)`` or ``v(l <= f <= u)`` — a value-range filter."""

    def __init__(self, lo, hi, kind="float", allow_exponent=True):
        if lo is None and hi is None:
            raise QueryError("number predicate needs at least one bound")
        if kind not in ("int", "float"):
            raise QueryError(f"unknown number kind {kind!r}")
        self.lo = lo
        self.hi = hi
        self.kind = kind
        self.allow_exponent = allow_exponent
        self._filter = NumberRangeFilter(
            lo, hi, kind=kind, allow_exponent=allow_exponent
        )

    @property
    def dfa(self):
        return self._filter.dfa

    def notation(self):
        symbol = "i" if self.kind == "int" else "f"
        if self.lo is None:
            return f"v({symbol} <= {self.hi})"
        if self.hi is None:
            return f"v({self.lo} <= {symbol})"
        return f"v({self.lo} <= {symbol} <= {self.hi})"

    def cache_key(self):
        return (
            "number",
            str(self.lo),
            str(self.hi),
            self.kind,
            self.allow_exponent,
        )

    def fire_array(self, arr):
        fires = np.zeros(arr.shape[0], dtype=bool)
        for position in self._filter.fire_positions(arr):
            if position < arr.shape[0]:
                fires[position] = True
        return fires

    def matches_record(self, data):
        return self._filter.record_matches(data)


class RegexPredicate(Primitive):
    """An arbitrary-regex token filter (same framing as number filters).

    The paper notes the DFA approach "can also be used for date formats or
    any other filter which can be represented using regular expressions";
    this node provides exactly that.  The regex is matched against whole
    numeric tokens when ``token_mode`` is ``"number"`` or against the full
    record when ``token_mode`` is ``"stream"`` (the pattern is implicitly
    anchored as ``.*pattern.*`` in stream mode).
    """

    def __init__(self, pattern, token_mode="stream"):
        from ..regex.ast import concat, lit, star
        from ..regex.charclass import CharClass
        from ..regex.dfa import DFA
        from ..regex.parser import parse_regex

        if token_mode not in ("stream", "number"):
            raise QueryError(f"unknown token mode {token_mode!r}")
        self.pattern = pattern
        self.token_mode = token_mode
        node = parse_regex(pattern)
        if token_mode == "stream":
            any_char = star(lit(CharClass.full()))
            node = concat(any_char, node, any_char)
        self.dfa = DFA.from_regex(node)

    def notation(self):
        return f"re({self.pattern})"

    def cache_key(self):
        return ("regex", self.pattern, self.token_mode)

    def fire_array(self, arr):
        if self.token_mode == "number":
            from .number_filter import token_spans

            fires = np.zeros(arr.shape[0], dtype=bool)
            for start, end in token_spans(arr):
                if self.dfa.accepts(arr[start:end].tobytes()):
                    if end < arr.shape[0]:
                        fires[end] = True
            return fires
        # stream mode: absorbing accept — fire from first acceptance on
        fires = np.zeros(arr.shape[0], dtype=bool)
        state = self.dfa.start
        table = self.dfa.table
        accepting = self.dfa.accepting
        for index in range(arr.shape[0]):
            state = table[state, arr[index]]
            if accepting[state]:
                fires[index:] = True
                break
        return fires

    def matches_record(self, data):
        data = bytes(data) + b"\n"
        return bool(
            self.fire_array(np.frombuffer(data, dtype=np.uint8)).any()
        )


class Group(RawFilter):
    """``{ RF1 & RF2 }`` — children must fire in the same scope (§III-C)."""

    def __init__(self, children, comma_scoped=False):
        children = tuple(children)
        if not children:
            raise QueryError("structural group needs at least one child")
        for child in children:
            if not isinstance(child, Primitive):
                raise QueryError(
                    "structural groups combine primitives only; nest "
                    "And/Or above groups instead"
                )
        self.children = children
        self.comma_scoped = comma_scoped

    def notation(self):
        inner = " & ".join(child.notation() for child in self.children)
        return "{ " + inner + " }"

    def cache_key(self):
        return (
            "group",
            tuple(child.cache_key() for child in self.children),
            self.comma_scoped,
        )

    def primitives(self):
        for child in self.children:
            yield from child.primitives()

    def atoms(self):
        yield self

    def matches_record(self, data):
        data = bytes(data) + b"\n"
        arr = np.frombuffer(data, dtype=np.uint8)
        fire_arrays = [child.fire_array(arr) for child in self.children]
        return group_matches_record(
            arr, fire_arrays, comma_scoped=self.comma_scoped
        )


class _Combinator(RawFilter):
    _symbol = "?"

    def __init__(self, children):
        children = tuple(children)
        if not children:
            raise QueryError(f"{type(self).__name__} needs children")
        self.children = children

    def notation(self):
        parts = []
        for child in self.children:
            text = child.notation()
            if isinstance(child, _Combinator):
                text = f"({text})"
            parts.append(text)
        return f" {self._symbol} ".join(parts)

    def cache_key(self):
        return (
            type(self).__name__,
            tuple(child.cache_key() for child in self.children),
        )

    def primitives(self):
        for child in self.children:
            yield from child.primitives()

    def atoms(self):
        for child in self.children:
            yield from child.atoms()


class And(_Combinator):
    """Record-level conjunction of raw filters."""

    _symbol = "&"

    def matches_record(self, data):
        return all(child.matches_record(data) for child in self.children)


class Or(_Combinator):
    """Record-level disjunction of raw filters."""

    _symbol = "|"

    def matches_record(self, data):
        return any(child.matches_record(data) for child in self.children)


def evaluate_record(expr, data):
    """Record-level accept of any raw-filter expression (reference path)."""
    return bool(expr.matches_record(data))


# -- convenience constructors (paper notation) ------------------------------

def s(needle, block=1):
    """``sB(needle)`` — substring matcher with block length B."""
    return StringPredicate(needle, block)


def full(needle):
    """``sN(needle)`` — full-length comparison (technique ii)."""
    return StringPredicate(needle, string_match.FULL)


def dfa(needle):
    """``dfa(needle)`` — DFA string matcher (technique i)."""
    return StringPredicate(needle, string_match.DFA_TECHNIQUE)


def v(lo, hi, kind="float", allow_exponent=True):
    """``v(lo <= x <= hi)`` — number-range filter."""
    return NumberPredicate(lo, hi, kind=kind, allow_exponent=allow_exponent)


def v_int(lo, hi, **kwargs):
    return NumberPredicate(lo, hi, kind="int", **kwargs)


def group(*children, comma_scoped=False):
    """``{ RF1 & RF2 }`` — structural-scope conjunction."""
    return Group(children, comma_scoped=comma_scoped)
