"""Behavioural model of the number-range raw filter (paper §III-B).

A :class:`NumberRangeFilter` owns the minimised DFA derived from the value
range (via :mod:`repro.regex.range_regex`) and evaluates it with the
paper's token framing: the automaton consumes characters of each maximal
numeric token (digits and ``+ - . e E``) and is checked/reset at the first
non-numeric character.

Evaluation is offered at three speeds:

* :meth:`token_accepts` — one token (reference semantics);
* :meth:`fire_positions` / :meth:`record_matches` — one record;
* :func:`batch_token_accepts` — lock-step vectorised DFA stepping over a
  whole dataset's token matrix (built once per dataset and shared by all
  number filters; see :mod:`repro.core.vectorized`).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..regex.charclass import NUMBER_TOKEN_CHARS
from ..regex.dfa import DFA
from ..regex.range_regex import number_range_regex

#: lookup table: byte value -> is it a numeric-token character
TOKEN_CHAR_TABLE = np.zeros(256, dtype=bool)
for _code in NUMBER_TOKEN_CHARS:
    TOKEN_CHAR_TABLE[_code] = True


def _bound_key(bound):
    if bound is None:
        return None
    return str(bound)


@lru_cache(maxsize=256)
def _build_dfa(lo_key, hi_key, kind, allow_exponent):
    regex = number_range_regex(
        lo_key, hi_key, kind=kind, allow_exponent=allow_exponent
    )
    return DFA.from_regex(regex)


class NumberRangeFilter:
    """Raw filter accepting records containing a number in ``[lo, hi]``.

    Args:
        lo, hi: bounds as ints, floats or decimal strings (``None`` for an
            open side; at least one bound required).
        kind: ``"int"`` or ``"float"`` — the paper distinguishes
            ``v(l <= i <= u)`` from ``v(l <= f <= u)``.
        allow_exponent: include the exponent escape hatch (paper default).
    """

    def __init__(self, lo, hi, kind="float", allow_exponent=True):
        self.lo = lo
        self.hi = hi
        self.kind = kind
        self.allow_exponent = allow_exponent
        self.dfa = _build_dfa(
            _bound_key(lo), _bound_key(hi), kind, allow_exponent
        )

    # -- single token ----------------------------------------------------

    def token_accepts(self, token):
        """Reference: does one numeric token match the range filter?"""
        if isinstance(token, str):
            token = token.encode("ascii", errors="replace")
        return self.dfa.accepts(token)

    # -- one record --------------------------------------------------------

    def tokens(self, data):
        """Maximal numeric-token (start, end) spans of a record."""
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
        return token_spans(arr)

    def fire_positions(self, arr):
        """Positions of the delimiter ending each *accepted* token.

        ``arr`` must end with a non-numeric byte (records are framed with
        a trailing newline) so the final token is closed.
        """
        positions = []
        for start, end in token_spans(arr):
            if self.dfa.accepts(arr[start:end].tobytes()):
                positions.append(end)  # the delimiter cycle
        return positions

    def record_matches(self, data):
        data = bytes(data) + b"\n"
        arr = np.frombuffer(data, dtype=np.uint8)
        return bool(self.fire_positions(arr))

    def __repr__(self):
        return f"NumberRangeFilter({self.lo!r}, {self.hi!r}, {self.kind})"


def token_spans(arr):
    """(start, end) spans of maximal numeric-token runs in a byte array."""
    is_token = TOKEN_CHAR_TABLE[arr]
    if not is_token.any():
        return []
    padded = np.concatenate(([False], is_token, [False]))
    delta = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(delta == 1)
    ends = np.flatnonzero(delta == -1)
    return list(zip(starts.tolist(), ends.tolist()))


def batch_token_accepts(dfa, token_matrix, token_lengths):
    """Run a DFA over many tokens in lock step.

    Args:
        dfa: a :class:`~repro.regex.dfa.DFA`.
        token_matrix: uint8 array of shape ``(num_tokens, max_len)``,
            zero-padded after each token.
        token_lengths: int array of shape ``(num_tokens,)``.
    Returns:
        boolean array: token accepted by the DFA.
    """
    num_tokens, max_len = token_matrix.shape
    states = np.full(num_tokens, dfa.start, dtype=np.int32)
    table = dfa.table
    for column in range(max_len):
        active = token_lengths > column
        if not active.any():
            break
        stepped = table[states, token_matrix[:, column]]
        states = np.where(active, stepped, states)
    return dfa.accepting[states]
