"""Compile JSONPath queries into raw filters (design-flow step i).

§III-D step i says "extract search strings and value ranges from the
query".  This module automates that step for the JSONPath dialect the
oracle supports, so the paper's Listing 2

    $.e[?(@.n=="temperature" & @.v >= 0.7 & @.v <= 35.1)]

compiles directly into the raw filter

    { s1("temperature") & v(0.7 <= f <= 35.1) }

Soundness rules (a raw filter must over-approximate the query):

* string equality  → a string matcher for the literal;
* numeric bounds on one field fold into one value-range filter; strict
  comparisons are widened to closed bounds (a superset — never a false
  negative);
* ``!=`` and other non-extractable predicates are *dropped* (again a
  superset);
* OR predicates compile all branches and join with record-level Or —
  nothing may be dropped inside an OR (§III-D iii.b);
* conjunctions become structural groups by default (the filter and its
  key live in the same scope), or record-level Ands with
  ``structural=False``.
"""

from __future__ import annotations

from ..errors import QueryError
from ..jsonpath.path import (
    AndPred,
    Comparison,
    Filter,
    OrPred,
    Path,
    compile_path,
)
from . import composition as comp


class _FieldBounds:
    """Accumulated numeric constraints on one ``@.field``."""

    __slots__ = ("lo", "hi", "has_float")

    def __init__(self):
        self.lo = None
        self.hi = None
        self.has_float = False

    def add(self, operator, literal):
        if isinstance(literal, float):
            self.has_float = True
        if operator in (">=", ">", "=="):
            if self.lo is None or literal > self.lo:
                self.lo = literal
        if operator in ("<=", "<", "=="):
            if self.hi is None or literal < self.hi:
                self.hi = literal

    def to_predicate(self):
        kind = "float" if self.has_float else "int"
        lo = self.lo
        hi = self.hi
        if lo is not None and hi is not None and float(lo) > float(hi):
            raise QueryError(
                f"contradictory bounds [{lo}, {hi}] in query filter"
            )
        return comp.NumberPredicate(lo, hi, kind=kind)


def compile_jsonpath(path, block=1, structural=True):
    """Compile a JSONPath string (or compiled Path) into a raw filter.

    Args:
        path: JSONPath text or a :class:`~repro.jsonpath.path.Path`.
        block: block length for the derived string matchers (1, 2, "N",
            or "dfa").
        structural: combine a filter predicate's primitives in one
            structural group (paper default for SenML-style data).
    Returns:
        a raw-filter expression; record-level evaluation of the result
        over-approximates ``path.matches`` on every record.
    """
    if not isinstance(path, Path):
        path = compile_path(path)

    filters = [step for step in path.steps if isinstance(step, Filter)]
    field_names = [
        step.name for step in path.steps if hasattr(step, "name")
    ]

    atoms = []
    if filters:
        for step in filters:
            atoms.append(
                _compile_predicate(step.predicate, block, structural)
            )
    if not atoms:
        # existence query: the terminal field name must appear
        if not field_names:
            raise QueryError(
                "cannot derive a raw filter from this path (no fields, "
                "no filter predicate)"
            )
        atoms.append(comp.StringPredicate(field_names[-1], block))
    if len(atoms) == 1:
        return atoms[0]
    return comp.And(atoms)


def _compile_predicate(predicate, block, structural):
    if isinstance(predicate, OrPred):
        branches = [
            _compile_predicate(term, block, structural)
            for term in predicate.terms
        ]
        return comp.Or(branches)
    if isinstance(predicate, AndPred):
        comparisons = []
        for term in predicate.terms:
            if isinstance(term, Comparison):
                comparisons.append(term)
            elif isinstance(term, (AndPred, OrPred)):
                # nested boolean structure: compile separately and AND
                nested = _compile_predicate(term, block, structural)
                comparisons.append(nested)
            else:  # pragma: no cover - parser produces only these
                raise QueryError(f"unsupported predicate {term!r}")
        return _combine_comparisons(comparisons, block, structural)
    if isinstance(predicate, Comparison):
        return _combine_comparisons([predicate], block, structural)
    raise QueryError(f"unsupported predicate {predicate!r}")


def _combine_comparisons(terms, block, structural):
    primitives = []
    bounds = {}
    for term in terms:
        if isinstance(term, comp.RawFilter):
            primitives.append(term)
            continue
        literal = term.literal
        if term.operator == "==" and isinstance(literal, str):
            primitives.append(comp.StringPredicate(literal, block))
            continue
        if term.operator == "!=":
            continue  # cannot be raw-filtered; dropping is sound
        if isinstance(literal, bool) or not isinstance(
            literal, (int, float)
        ):
            continue  # non-numeric comparison: drop (sound)
        bounds.setdefault(term.field, _FieldBounds()).add(
            term.operator, literal
        )
    for field_bounds in bounds.values():
        if field_bounds.lo is None and field_bounds.hi is None:
            continue
        primitives.append(field_bounds.to_predicate())

    flat = [p for p in primitives if isinstance(p, comp.Primitive)]
    nested = [p for p in primitives if not isinstance(p, comp.Primitive)]
    if not flat and not nested:
        raise QueryError(
            "no raw-filterable predicate in this query filter"
        )
    pieces = []
    if flat:
        if structural and len(flat) > 1:
            pieces.append(comp.Group(flat))
        elif len(flat) == 1:
            pieces.append(flat[0])
        else:
            pieces.append(comp.And(flat))
    pieces.extend(nested)
    if len(pieces) == 1:
        return pieces[0]
    return comp.And(pieces)
