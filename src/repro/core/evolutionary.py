"""Evolutionary design-space exploration (the paper's future-work item).

§V: "Currently, the RFs are created manually by brute force searching for
Pareto points.  Since this is too time-consuming for an automatic
generation of RFs, meta heuristics such as evolutionary algorithms can be
used in the future."

This module implements that proposal: a small NSGA-II-style multi-
objective genetic algorithm over the configuration genome (one gene per
query condition, each gene an option index).  The ablation benchmark
compares its front against the brute-force front at a fraction of the
evaluations.
"""

from __future__ import annotations

import numpy as np

from ..errors import DesignSpaceError
from .design_space import ExploredPoint


class EvolutionResult:
    """Outcome of a GA run."""

    def __init__(self, front, evaluations, generations, history):
        self.front = front                # list of ExploredPoint
        self.evaluations = evaluations    # unique configurations evaluated
        self.generations = generations
        self.history = history            # best-FPR trajectory

    def __repr__(self):
        return (
            f"EvolutionResult(front={len(self.front)}, "
            f"evaluations={self.evaluations})"
        )


def _non_dominated_sort(points):
    """Fast-ish non-dominated sorting; returns list of fronts (indices)."""
    n = len(points)
    dominated_by = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            a, b = points[i], points[j]
            if (a.fpr <= b.fpr and a.luts <= b.luts) and (
                a.fpr < b.fpr or a.luts < b.luts
            ):
                dominated_by[i].append(j)
            elif (b.fpr <= a.fpr and b.luts <= a.luts) and (
                b.fpr < a.fpr or b.luts < a.luts
            ):
                domination_count[i] += 1
    fronts = [[i for i in range(n) if domination_count[i] == 0]]
    while fronts[-1]:
        nxt = []
        for i in fronts[-1]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        fronts.append(nxt)
    fronts.pop()
    return fronts


def _crowding_distance(points, indices):
    if len(indices) <= 2:
        return {i: float("inf") for i in indices}
    distance = {i: 0.0 for i in indices}
    for key in ("fpr", "luts"):
        ordered = sorted(indices, key=lambda i: getattr(points[i], key))
        lo = getattr(points[ordered[0]], key)
        hi = getattr(points[ordered[-1]], key)
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        if hi == lo:
            continue
        for rank in range(1, len(ordered) - 1):
            gap = (
                getattr(points[ordered[rank + 1]], key)
                - getattr(points[ordered[rank - 1]], key)
            )
            distance[ordered[rank]] += gap / (hi - lo)
    return distance


def evolve(space, population_size=48, generations=40, seed=0,
           mutation_rate=0.25, crossover_rate=0.9):
    """NSGA-II-lite exploration of a :class:`DesignSpace`.

    Returns an :class:`EvolutionResult` whose front approximates the
    brute-force Pareto front using far fewer configuration evaluations.
    """
    rng = np.random.default_rng(seed)
    num_genes = len(space.options)
    gene_sizes = [len(opts) for opts in space.options]
    if population_size < 4:
        raise DesignSpaceError("population too small")

    evaluated = {}

    def evaluate(choice):
        if choice not in evaluated:
            fpr, luts, attributes = space.evaluate_choice(choice)
            evaluated[choice] = ExploredPoint(choice, fpr, luts, attributes)
        return evaluated[choice]

    def random_choice():
        while True:
            choice = tuple(
                int(rng.integers(0, size)) for size in gene_sizes
            )
            if not all(
                space.options[i][g].is_omit for i, g in enumerate(choice)
            ):
                return choice

    def repair(choice):
        if all(space.options[i][g].is_omit for i, g in enumerate(choice)):
            position = int(rng.integers(0, num_genes))
            options = space.options[position]
            non_omit = [i for i, o in enumerate(options) if not o.is_omit]
            genes = list(choice)
            genes[position] = int(rng.choice(non_omit))
            return tuple(genes)
        return choice

    population = [random_choice() for _ in range(population_size)]
    history = []

    for generation in range(generations):
        points = [evaluate(choice) for choice in population]
        history.append(min(point.fpr for point in points))

        # make children
        children = []
        while len(children) < population_size:
            a, b = rng.integers(0, population_size, size=2)
            parent_a, parent_b = population[int(a)], population[int(b)]
            if rng.random() < crossover_rate:
                child = tuple(
                    parent_a[i] if rng.random() < 0.5 else parent_b[i]
                    for i in range(num_genes)
                )
            else:
                child = parent_a
            genes = list(child)
            for position in range(num_genes):
                if rng.random() < mutation_rate:
                    genes[position] = int(
                        rng.integers(0, gene_sizes[position])
                    )
            children.append(repair(tuple(genes)))

        # environmental selection over parents + children
        pool = list(dict.fromkeys(population + children))
        pool_points = [evaluate(choice) for choice in pool]
        fronts = _non_dominated_sort(pool_points)
        survivors = []
        for front in fronts:
            if len(survivors) + len(front) <= population_size:
                survivors.extend(front)
            else:
                crowding = _crowding_distance(pool_points, front)
                ranked = sorted(
                    front, key=lambda i: -crowding[i]
                )
                survivors.extend(
                    ranked[: population_size - len(survivors)]
                )
                break
        population = [pool[i] for i in survivors]

    final_points = [evaluate(choice) for choice in population]
    fronts = _non_dominated_sort(final_points)
    front = [final_points[i] for i in fronts[0]] if fronts else []
    front.sort(key=lambda p: (-p.fpr, p.luts))
    return EvolutionResult(
        front, len(evaluated), generations, history
    )
