"""Sampled FPR estimation (the paper's second future-work item).

§V: "Instead of evaluating each design point for the complete dataset, we
want to explore sampling methods that can potentially speed up the
process without a large increase in the FPR."

:func:`sampled_design_space` evaluates a design space on a random record
subsample; :func:`sampling_error_study` quantifies how the estimated
FPRs (and the resulting Pareto front) deviate from the full-dataset
truth as the sample shrinks — the ablation benchmark reports this table.
"""

from __future__ import annotations

import numpy as np

from ..errors import DesignSpaceError
from .design_space import DesignSpace


def sample_dataset(dataset, fraction, seed=0, stratify_truth=None):
    """Random record subsample; optionally stratified on oracle truth.

    Stratification keeps the positive/negative balance, which matters
    because FPR is conditioned on negatives.
    """
    if not 0.0 < fraction <= 1.0:
        raise DesignSpaceError("sample fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    k = max(1, int(round(n * fraction)))
    if stratify_truth is None:
        indices = rng.choice(n, size=k, replace=False)
    else:
        truth = np.asarray(stratify_truth, dtype=bool)
        positives = np.flatnonzero(truth)
        negatives = np.flatnonzero(~truth)
        k_pos = max(1, int(round(k * positives.size / n)))
        k_neg = max(1, k - k_pos)
        indices = np.concatenate(
            [
                rng.choice(positives, size=min(k_pos, positives.size),
                           replace=False),
                rng.choice(negatives, size=min(k_neg, negatives.size),
                           replace=False),
            ]
        )
    indices = np.sort(indices)
    return dataset.subset(indices.tolist()), indices


def sampled_design_space(query, dataset, fraction, seed=0, **kwargs):
    """A DesignSpace over a stratified record subsample."""
    truth = query.truth_array(dataset)
    subset, _ = sample_dataset(
        dataset, fraction, seed=seed, stratify_truth=truth
    )
    return DesignSpace(query, subset, **kwargs)


def sampling_error_study(query, dataset, fractions=(0.5, 0.25, 0.1, 0.05),
                         seed=0, probe_choices=None, **kwargs):
    """Compare sampled FPR estimates against full-dataset FPRs.

    Returns a list of dicts (one per fraction) with the mean/max absolute
    FPR error over probe configurations and the speedup proxy (records
    evaluated).
    """
    full_space = DesignSpace(query, dataset, **kwargs)
    if probe_choices is None:
        rng = np.random.default_rng(seed)
        probe_choices = []
        sizes = [len(opts) for opts in full_space.options]
        while len(probe_choices) < 64:
            choice = tuple(int(rng.integers(0, s)) for s in sizes)
            if all(
                full_space.options[i][g].is_omit
                for i, g in enumerate(choice)
            ):
                continue
            probe_choices.append(choice)
    full_fprs = {
        choice: full_space.evaluate_choice(choice)[0]
        for choice in probe_choices
    }
    rows = []
    for fraction in fractions:
        space = sampled_design_space(
            query, dataset, fraction, seed=seed, **kwargs
        )
        errors = []
        for choice in probe_choices:
            estimated = space.evaluate_choice(choice)[0]
            errors.append(abs(estimated - full_fprs[choice]))
        errors = np.array(errors)
        rows.append(
            {
                "fraction": fraction,
                "records": len(space.dataset),
                "mean_abs_error": float(errors.mean()),
                "max_abs_error": float(errors.max()),
            }
        )
    return rows
