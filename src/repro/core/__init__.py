"""The paper's contribution: raw-filter primitives, composition, DSE.

Public entry points:

* primitives & composition — :func:`s`, :func:`full`, :func:`dfa`,
  :func:`v`, :func:`v_int`, :func:`group`, :class:`And`, :class:`Or`
* query compilation — :mod:`repro.core.compiler`
* design-space exploration — :class:`repro.core.design_space.DesignSpace`
* costs — :func:`repro.core.cost.exact_luts` /
  :func:`repro.core.cost.estimate_luts`
"""

from .composition import (
    And,
    Group,
    NumberPredicate,
    Or,
    Primitive,
    RawFilter,
    RegexPredicate,
    StringPredicate,
    dfa,
    evaluate_record,
    full,
    group,
    s,
    v,
    v_int,
)
from .cost import estimate_luts, exact_luts
from .design_space import DesignSpace
from .jsonpath_compiler import compile_jsonpath
from .number_filter import NumberRangeFilter
from .string_match import DFA_TECHNIQUE, FULL, substrings, unique_substrings

__all__ = [
    "And",
    "Group",
    "NumberPredicate",
    "Or",
    "Primitive",
    "RawFilter",
    "RegexPredicate",
    "StringPredicate",
    "dfa",
    "evaluate_record",
    "full",
    "group",
    "s",
    "v",
    "v_int",
    "estimate_luts",
    "exact_luts",
    "DesignSpace",
    "compile_jsonpath",
    "NumberRangeFilter",
    "DFA_TECHNIQUE",
    "FULL",
    "substrings",
    "unique_substrings",
]
