"""LUT cost model for raw-filter configurations.

Two fidelities:

* :func:`exact_luts` — synthesise the complete composed circuit (shared
  byte input, one structural tracker, all primitives) and technology-map
  it.  Used for every reported Pareto point.
* :func:`estimate_luts` — additive model over per-atom synthesised costs
  with the shared tracker counted once.  Used inside design-space
  exploration where synthesising ~10⁵ full circuits would be wasteful.
  The estimator is validated against :func:`exact_luts` by the test
  suite (it is an upper bound within a few LUTs: composition only *adds*
  sharing).
"""

from __future__ import annotations

from functools import lru_cache

from . import composition as comp

_ATOM_CACHE = {}


def _build_circuit(expr):
    from ..hw.circuits import build_raw_filter_circuit

    return build_raw_filter_circuit(expr)


def exact_luts(expr, k=6):
    """LUT count of the fully composed circuit (the honest number)."""
    return _build_circuit(expr).lut_count(k=k)


@lru_cache(maxsize=1)
def tracker_luts(k=6):
    """Cost of the shared structural tracker alone."""
    from ..hw.circuits import add_structural_tracker
    from ..hw.rtl import Circuit

    circuit = Circuit("tracker_probe")
    byte = circuit.add_input_vector("byte", 8)
    record_reset = circuit.add_input("record_reset")
    signals = add_structural_tracker(circuit, byte, record_reset)
    circuit.add_output("close", signals.close_bracket)
    circuit.add_output("comma", signals.comma)
    return circuit.lut_count(k=k)


def atom_luts(atom, k=6):
    """Synthesised cost of one atom (primitive or structural group).

    Group costs include one structural tracker; :func:`estimate_luts`
    removes the duplicates when several groups share a filter.
    """
    key = (atom.cache_key(), k)
    if key not in _ATOM_CACHE:
        _ATOM_CACHE[key] = exact_luts(atom, k=k)
    return _ATOM_CACHE[key]


def estimate_luts(atoms, k=6):
    """Additive LUT estimate for a conjunction of atoms."""
    total = 0
    groups = 0
    for atom in atoms:
        total += atom_luts(atom, k=k)
        if isinstance(atom, comp.Group):
            groups += 1
    if groups > 1:
        total -= (groups - 1) * tracker_luts(k=k)
    return total


def clear_cost_cache():
    _ATOM_CACHE.clear()
    tracker_luts.cache_clear()
