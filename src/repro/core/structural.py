"""Behavioural structural awareness (paper §III-C).

Two implementations of the same semantics:

* :class:`ScopeMachine` — a byte-per-cycle reference that mirrors the
  hardware tracker register for register (test oracle);
* the vectorised functions (:func:`string_mask`, :func:`depth_array`,
  :func:`scope_close_positions`) — closed-form numpy computations used by
  the dataset-scale evaluator.

Semantics recap: a quote toggles "inside string" unless escaped; a
backslash inside a string escapes the next character; unmasked brackets
adjust the nesting level and every unmasked closing bracket ends a
*scope*.  A structural group matches when all of its children fired since
the previous scope close (fires on the closing byte itself count — a
number token is often delimited by exactly that bracket).
"""

from __future__ import annotations

import numpy as np

_QUOTE = ord('"')
_BACKSLASH = ord("\\")
_OPENERS = (ord("{"), ord("["))
_CLOSERS = (ord("}"), ord("]"))
_COMMA = ord(",")


class ScopeMachine:
    """Byte-per-cycle reference implementation of the structural tracker."""

    def __init__(self):
        self.in_string = False
        self.escaped = False
        self.depth = 0

    def step(self, byte):
        """Process one byte; returns (masked, open_event, close_event, comma).

        ``masked`` reflects the tracker state *at* this byte (a closing
        quote is still masked, matching the hardware register timing).
        """
        masked = self.in_string
        open_event = close_event = comma = False
        if not masked:
            if byte in _OPENERS:
                self.depth += 1
                open_event = True
            elif byte in _CLOSERS:
                if self.depth > 0:
                    self.depth -= 1
                close_event = True
            elif byte == _COMMA:
                comma = True
        if byte == _QUOTE and not self.escaped:
            self.in_string = not self.in_string
        # escape tracking is independent of string state (simdjson-style):
        # equivalent on well-formed JSON, and it keeps the scalar,
        # vectorised and gate-level implementations bit-identical on
        # arbitrary byte streams
        if byte == _BACKSLASH and not self.escaped:
            self.escaped = True
        else:
            self.escaped = False
        return masked, open_event, close_event, comma


def string_mask(arr):
    """Vectorised ``masked`` array: is byte ``i`` inside a JSON string?

    A byte is masked when the tracker's ``in_string`` register is set when
    the byte arrives; the opening quote itself is unmasked, the closing
    quote masked, everything between masked.
    """
    n = arr.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    is_backslash = arr == _BACKSLASH
    index = np.arange(n, dtype=np.int64)
    # length of the backslash run ending at each position
    last_not_backslash = np.maximum.accumulate(
        np.where(~is_backslash, index, -1)
    )
    run_ending_here = np.where(is_backslash, index - last_not_backslash, 0)
    # a character is escape-protected when preceded by an odd backslash run
    preceding_run = np.concatenate(([0], run_ending_here[:-1]))
    escaped = (preceding_run % 2) == 1
    effective_quote = (arr == _QUOTE) & ~escaped
    toggles = np.cumsum(effective_quote)
    in_string_after = (toggles % 2) == 1
    return np.concatenate(([False], in_string_after[:-1]))


def depth_array(arr, masked=None):
    """Nesting depth at each byte (before processing that byte)."""
    if masked is None:
        masked = string_mask(arr)
    opens = np.isin(arr, _OPENERS) & ~masked
    closes = np.isin(arr, _CLOSERS) & ~masked
    delta = opens.astype(np.int64) - closes.astype(np.int64)
    after = np.cumsum(delta)
    return np.concatenate(([0], after[:-1]))


def scope_close_positions(arr, masked=None):
    """Positions of unmasked closing brackets (scope-close events)."""
    if masked is None:
        masked = string_mask(arr)
    return np.flatnonzero(np.isin(arr, _CLOSERS) & ~masked)


def comma_positions(arr, masked=None):
    if masked is None:
        masked = string_mask(arr)
    return np.flatnonzero((arr == _COMMA) & ~masked)


def group_fire_closes(close_positions, child_fire_cumsums):
    """Which scope closes see *all* children fired in their segment.

    Args:
        close_positions: sorted positions of scope-close events.
        child_fire_cumsums: per child, the inclusive cumulative count of
            fire events (``np.cumsum(fire_bool)``).
    Returns:
        boolean array over ``close_positions``.
    """
    if close_positions.size == 0:
        return np.zeros(0, dtype=bool)
    result = np.ones(close_positions.shape[0], dtype=bool)
    for cumsum in child_fire_cumsums:
        at_close = cumsum[close_positions]
        before_segment = np.concatenate(([0], at_close[:-1]))
        result &= (at_close - before_segment) > 0
    return result


def group_matches_record(arr, child_fire_arrays, comma_scoped=False):
    """Scalar per-record structural-group evaluation.

    ``arr`` is one record (uint8, newline-terminated); each child fire
    array is the child's per-cycle fire booleans over the same bytes.
    """
    masked = string_mask(arr)
    closes = scope_close_positions(arr, masked)
    if comma_scoped:
        closes = np.union1d(closes, comma_positions(arr, masked))
    if closes.size == 0:
        return False
    cumsums = [np.cumsum(f.astype(np.int64)) for f in child_fire_arrays]
    return bool(group_fire_closes(closes, cumsums).any())
