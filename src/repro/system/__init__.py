"""System-level simulation of the paper's Fig. 4 architecture."""

from .dma import DMAConfig, DMAEngine
from .multi import (
    MultiStreamSoC,
    ReconfigurableSoC,
    StreamAssignment,
    reconfiguration_seconds,
)
from .pipeline import FilterLane
from .soc import RawFilterSoC, SoCConfig, ThroughputReport

__all__ = [
    "DMAConfig",
    "DMAEngine",
    "MultiStreamSoC",
    "ReconfigurableSoC",
    "StreamAssignment",
    "reconfiguration_seconds",
    "FilterLane",
    "RawFilterSoC",
    "SoCConfig",
    "ThroughputReport",
]
