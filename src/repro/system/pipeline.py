"""Raw-filter lane model: one byte per cycle, plus functional results.

A :class:`FilterLane` pairs the paper's timing contract (a pipelined RF
consumes exactly one byte per clock, never stalling the stream) with the
behavioural evaluation of its raw filter, so the system simulation
produces both a cycle count *and* the actual per-record match bits that
the DMA writes back.
"""

from __future__ import annotations

import numpy as np

from ..core.composition import evaluate_record


class FilterLane:
    """One pipelined raw-filter instance in the programmable logic."""

    def __init__(self, expr, lane_id=0, pipeline_fill_cycles=4):
        self.expr = expr
        self.lane_id = lane_id
        #: cycles to drain the lane's register stages at end of stream
        self.pipeline_fill_cycles = pipeline_fill_cycles
        self.bytes_processed = 0
        self.records_processed = 0

    def process_records(self, records, accept_mask=None):
        """Consume records; returns (cycles, match_bits).

        ``accept_mask`` can supply precomputed match bits (from the
        vectorised harness) to avoid re-evaluating per record; otherwise
        the behavioural evaluator runs here.
        """
        cycles = 0
        matches = np.zeros(len(records), dtype=bool)
        for index, record in enumerate(records):
            cycles += len(record) + 1  # +1 for the newline separator
            if accept_mask is not None:
                matches[index] = accept_mask[index]
            else:
                matches[index] = evaluate_record(self.expr, record)
        cycles += self.pipeline_fill_cycles
        self.bytes_processed += int(
            sum(len(record) + 1 for record in records)
        )
        self.records_processed += len(records)
        return cycles, matches

    def __repr__(self):
        return f"FilterLane({self.lane_id}, {self.expr.notation()})"
