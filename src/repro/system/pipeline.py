"""Raw-filter lane model: one byte per cycle, plus functional results.

A :class:`FilterLane` pairs the paper's timing contract (a pipelined RF
consumes exactly one byte per clock, never stalling the stream) with the
behavioural evaluation of its raw filter, so the system simulation
produces both a cycle count *and* the actual per-record match bits that
the DMA writes back.

Match bits come from the shared :class:`repro.engine.FilterEngine`
execution layer rather than a private evaluation loop — a lane's
functional behaviour is, by construction, the same audited code path the
CLI, baselines and eval harness use.
"""

from __future__ import annotations

import numpy as np

from ..engine import FilterEngine
from ..errors import ReproError


class FilterLane:
    """One pipelined raw-filter instance in the programmable logic."""

    def __init__(self, expr, lane_id=0, pipeline_fill_cycles=4,
                 engine=None):
        self.expr = expr
        self.lane_id = lane_id
        #: cycles to drain the lane's register stages at end of stream
        self.pipeline_fill_cycles = pipeline_fill_cycles
        #: the execution layer producing this lane's match bits; the
        #: scalar backend mirrors the hardware's record-at-a-time flow
        self.engine = engine or FilterEngine(backend="scalar")
        self.bytes_processed = 0
        self.records_processed = 0

    def process_records(self, records, accept_mask=None):
        """Consume records; returns (cycles, match_bits).

        ``accept_mask`` can supply precomputed match bits (typically the
        engine's vectorised backend run once for all lanes) to avoid
        re-evaluating per record; otherwise this lane's engine runs.
        """
        records = list(records)
        payload = sum(len(record) + 1 for record in records)  # +1: \n
        cycles = payload + self.pipeline_fill_cycles
        if accept_mask is not None:
            matches = np.asarray(accept_mask, dtype=bool)
            if matches.shape[0] < len(records):
                raise ReproError(
                    f"accept_mask covers {matches.shape[0]} records, "
                    f"lane received {len(records)}"
                )
            matches = matches[:len(records)].copy()
        else:
            matches = self.engine.match_bits(self.expr, records)
        self.bytes_processed += payload
        self.records_processed += len(records)
        return cycles, matches

    def __repr__(self):
        return f"FilterLane({self.lane_id}, {self.expr.notation()})"
