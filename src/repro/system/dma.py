"""AXI DMA engine model for the Fig. 4 architecture.

The paper's experiment preloads 44 MB of JSON into the Zynq PS RAM and
streams it through the programmable logic with DMA, measuring 1.33 GB/s
against a 1.4 GB/s theoretical lane bandwidth (7 lanes × 1 B/cycle ×
200 MHz).  The ~5 % loss is DMA bookkeeping: descriptor setup between
bursts and shared-bus arbitration.  This model captures exactly those
terms — it is a throughput model, not a bus-protocol simulator.
"""

from __future__ import annotations

from ..errors import ReproError


class DMAConfig:
    """Timing parameters of the scatter-gather AXI DMA + interconnect."""

    def __init__(self, bus_bytes_per_cycle=8, burst_bytes=4096,
                 descriptor_overhead_cycles=100, channel_setup_cycles=180):
        if burst_bytes <= 0 or bus_bytes_per_cycle <= 0:
            raise ReproError("bad DMA configuration")
        #: AXI HP port width (64-bit at the PL clock)
        self.bus_bytes_per_cycle = bus_bytes_per_cycle
        #: scatter-gather descriptor granularity
        self.burst_bytes = burst_bytes
        #: cycles to fetch and retire one scatter-gather descriptor — two
        #: DRAM round trips through the PS interconnect at the 200 MHz PL
        #: clock; this term is what pulls the achieved rate below the
        #: 1.4 GB/s theoretical lane bandwidth, as in the paper's 1.33
        self.descriptor_overhead_cycles = descriptor_overhead_cycles
        #: one-off channel programming cost per transfer
        self.channel_setup_cycles = channel_setup_cycles


class DMAEngine:
    """Computes delivery times of burst transfers on the shared bus."""

    def __init__(self, config=None):
        self.config = config or DMAConfig()
        self.busy_until = 0  # bus time in cycles

    def reset(self):
        self.busy_until = 0

    def transfer(self, num_bytes, earliest_start=0):
        """Schedule a transfer; returns (start_cycle, finish_cycle).

        The transfer is split into bursts; each burst pays the descriptor
        overhead and then streams at the bus width per cycle.  The engine
        serialises transfers (one shared channel), starting no earlier
        than ``earliest_start``.
        """
        if num_bytes <= 0:
            return (earliest_start, earliest_start)
        config = self.config
        start = max(self.busy_until, earliest_start)
        cycles = config.channel_setup_cycles
        remaining = num_bytes
        while remaining > 0:
            chunk = min(remaining, config.burst_bytes)
            cycles += config.descriptor_overhead_cycles
            cycles += -(-chunk // config.bus_bytes_per_cycle)  # ceil div
            remaining -= chunk
        finish = start + cycles
        self.busy_until = finish
        return (start, finish)

    def effective_bandwidth(self, num_bytes, clock_hz):
        """Bytes/s the engine sustains for a transfer of ``num_bytes``."""
        self.reset()
        start, finish = self.transfer(num_bytes)
        cycles = finish - start
        if cycles == 0:
            return float("inf")
        return num_bytes / (cycles / clock_hz)
