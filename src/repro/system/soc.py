"""System-level simulation of the Fig. 4 architecture (§IV-B).

A Zynq-7000-style SoC: JSON preloaded in PS RAM, DMA'd into 7 parallel
byte-per-cycle raw-filter lanes in the programmable logic at 200 MHz,
match bitmap DMA'd back.  The simulation interleaves input bursts, lane
consumption and result write-back on a shared AXI port and reports the
achieved end-to-end rate, which lands near the paper's 1.33 GB/s against
the 1.4 GB/s theoretical lane bandwidth.

The lanes' functional output (the match bits) comes from the behavioural
filter evaluation, so the experiment also *verifies* that filtering at
line rate loses no records.
"""

from __future__ import annotations

from ..engine import FilterEngine
from ..errors import ReproError
from .dma import DMAConfig, DMAEngine
from .pipeline import FilterLane

GIGABYTE = 1e9


class SoCConfig:
    """Platform parameters of the ZC706-style target."""

    def __init__(self, num_lanes=7, clock_hz=200_000_000,
                 lane_fifo_bytes=8192, dma=None):
        if num_lanes <= 0:
            raise ReproError("need at least one lane")
        self.num_lanes = num_lanes
        self.clock_hz = clock_hz
        self.lane_fifo_bytes = lane_fifo_bytes
        self.dma = dma or DMAConfig()

    @property
    def theoretical_bandwidth(self):
        """Bytes/s if every lane consumed one byte every cycle forever."""
        return self.num_lanes * self.clock_hz


class ThroughputReport:
    """Outcome of one system run."""

    def __init__(self, total_bytes, total_cycles, clock_hz,
                 theoretical_bandwidth, matches, per_lane_bytes,
                 host_seconds=None):
        self.total_bytes = total_bytes
        self.total_cycles = total_cycles
        self.clock_hz = clock_hz
        self.theoretical_bandwidth = theoretical_bandwidth
        self.matches = matches
        self.per_lane_bytes = per_lane_bytes
        #: wall-clock seconds the host CPU spent producing the same
        #: match bits through the software FilterEngine (the host
        #: co-processing model — includes AtomCache service, so warm
        #: repeats are near zero); ``None`` for non-functional runs
        self.host_seconds = host_seconds

    @property
    def seconds(self):
        return self.total_cycles / self.clock_hz

    @property
    def host_bandwidth(self):
        """Bytes/s of the software engine run on the host, if measured."""
        if not self.host_seconds:
            return None
        return self.total_bytes / self.host_seconds

    @property
    def coprocessing_speedup(self):
        """FPGA-lane speedup over the measured host software path."""
        if not self.host_seconds or self.seconds == 0:
            return None
        return self.host_seconds / self.seconds

    @property
    def achieved_bandwidth(self):
        """End-to-end bytes/s (the paper measures 1.33 GB/s)."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_bytes / self.seconds

    @property
    def achieved_gbps(self):
        return self.achieved_bandwidth / GIGABYTE

    @property
    def utilization(self):
        return self.achieved_bandwidth / self.theoretical_bandwidth

    def sustains_line_rate(self, nic_gbit_per_s=10.0):
        """Can the system keep up with a NIC of the given line rate?"""
        nic_bytes_per_s = nic_gbit_per_s * 1e9 / 8.0
        return self.achieved_bandwidth >= nic_bytes_per_s

    def __repr__(self):
        return (
            f"ThroughputReport({self.achieved_gbps:.2f} GB/s, "
            f"util={self.utilization:.2%})"
        )


class RawFilterSoC:
    """The complete Fig. 4 system: DMA + N parallel raw-filter lanes."""

    def __init__(self, expr, config=None, engine=None):
        self.expr = expr
        self.config = config or SoCConfig()
        #: the shared execution layer producing functional match bits
        self.engine = engine or FilterEngine()
        self.lanes = [
            FilterLane(expr, lane_id=i, engine=self.engine)
            for i in range(self.config.num_lanes)
        ]

    def _partition(self, dataset):
        """Round-robin record distribution across lanes (record-granular,
        as a real splitter keyed on newline boundaries would do)."""
        assignments = [[] for _ in self.lanes]
        for index in range(len(dataset)):
            assignments[index % len(self.lanes)].append(index)
        return assignments

    def run(self, dataset, precomputed_matches=None, functional=True):
        """Stream a dataset through the system; returns ThroughputReport.

        Args:
            dataset: the (inflated) record corpus — a ``Dataset``, or
                any ingest object the engine accepts (a
                :class:`~repro.engine.sources.ChunkSource`, raw bytes,
                a binary handle …), framed on newline boundaries by the
                engine's ingest layer exactly as the hardware splitter
                would.
            precomputed_matches: optional per-record accept bits; when
                absent and ``functional`` is true they are computed by
                the shared engine (identical to the lanes' logic).
            functional: evaluate match bits at all (disable for pure
                timing runs on very large corpora).
        """
        dataset = self.engine.ingest(dataset, name="soc-ingest")
        config = self.config
        dma = config.dma
        matches = precomputed_matches
        if matches is None and functional:
            matches = self.engine.match_bits(self.expr, dataset)

        assignments = self._partition(dataset)
        per_lane_bytes = [
            sum(len(dataset.records[i]) + 1 for i in record_indices)
            for record_indices in assignments
        ]

        # burst-granular round-robin delivery on the shared AXI port:
        # each burst pays the descriptor overhead, then streams at the
        # bus width; a lane consumes delivered bytes one per cycle and
        # stalls when its FIFO runs dry (which happens exactly when the
        # bus cannot sustain num_lanes bytes/cycle aggregate)
        remaining = list(per_lane_bytes)
        bus_time = dma.channel_setup_cycles
        lane_avail = [0] * len(self.lanes)  # cycle when lane is drained
        while any(remaining):
            for lane_index in range(len(self.lanes)):
                if remaining[lane_index] <= 0:
                    continue
                chunk = min(remaining[lane_index], dma.burst_bytes)
                bus_time += dma.descriptor_overhead_cycles
                bus_time += -(-chunk // dma.bus_bytes_per_cycle)
                remaining[lane_index] -= chunk
                # the lane resumes at delivery time if it was starved
                lane_avail[lane_index] = (
                    max(lane_avail[lane_index], bus_time) + chunk
                )

        # result write-back: one match bit per record, packed; shares the
        # bus after each lane drains
        output_dma = DMAEngine(dma)
        output_dma.busy_until = bus_time
        finish = 0
        for lane_index, record_indices in enumerate(assignments):
            lane_done = (
                lane_avail[lane_index]
                + self.lanes[lane_index].pipeline_fill_cycles
            )
            result_bytes = max(1, (len(record_indices) + 7) // 8)
            _, written = output_dma.transfer(
                result_bytes, earliest_start=lane_done
            )
            finish = max(finish, written)

        total_cycles = int(finish) if len(dataset) else 0
        total_bytes = int(sum(per_lane_bytes))
        return ThroughputReport(
            total_bytes,
            total_cycles,
            config.clock_hz,
            config.theoretical_bandwidth,
            matches,
            per_lane_bytes,
        )
