"""Multi-stream operation and reconfiguration (paper §IV-B, last ¶).

"Since the presented RFs require only a small amount of resources, even
more RFs can be used to process multiple data streams in parallel.
Furthermore, the programmable logic can be reconfigured, allowing the
RFs to be replaced when a new query is to be executed."

Two facilities model that:

* :class:`MultiStreamSoC` — partition the lanes among several streams,
  each with its own raw filter, and run them concurrently;
* :class:`ReconfigurableSoC` — swap the active raw filter at run time,
  paying a partial-reconfiguration latency proportional to the region's
  configuration-frame count (estimated from the filter's LUT footprint).
"""

from __future__ import annotations

import time

from ..core.cost import exact_luts
from ..engine import FilterEngine
from ..errors import ReproError
from .soc import RawFilterSoC, SoCConfig


class StreamAssignment:
    """One input stream with its raw filter and lane share."""

    __slots__ = ("name", "expr", "lanes")

    def __init__(self, name, expr, lanes):
        if lanes <= 0:
            raise ReproError("each stream needs at least one lane")
        self.name = name
        self.expr = expr
        self.lanes = lanes


class MultiStreamSoC:
    """Several independent filter pipelines sharing one device.

    Each stream gets a dedicated lane group (the paper's lanes are
    independent, so this is a static partition of the 7 lanes) and its
    own DMA channel; streams run concurrently and report individually.
    All streams share one :class:`FilterEngine` — the engine is
    expression-agnostic, so its backend caches and configuration are
    reused across every stream's filter.  The default engine carries an
    :class:`~repro.engine.atom_cache.AtomCache`, so streams whose
    filters share atoms over the same corpus reuse each other's
    vectorised evaluation work.
    """

    def __init__(self, assignments, clock_hz=200_000_000, engine=None):
        total = sum(a.lanes for a in assignments)
        if not assignments:
            raise ReproError("need at least one stream")
        self.assignments = list(assignments)
        self.clock_hz = clock_hz
        self.total_lanes = total
        self.engine = engine or FilterEngine(cache=True)

    def run(self, datasets, functional=True):
        """Run every stream; ``datasets`` maps stream name -> corpus.

        A corpus is a ``Dataset`` or any ingest object the shared
        engine accepts (chunk sources, raw bytes, binary handles),
        framed through the engine's ingest layer.

        Returns {stream name: ThroughputReport}.  Wall-clock time of the
        whole device is the max over streams (they are concurrent).

        Functional runs time the shared engine's evaluation per stream
        and record it as :attr:`ThroughputReport.host_seconds`: the
        engine acts as the host co-processing model (the same filter
        run in software on the PS, against which the PL lanes report
        their speedup).  The measured time is the engine's *actual*
        cost, cache included — a warm AtomCache models a host that has
        already filtered this corpus, so repeated runs legitimately
        report near-zero host time (check ``engine.stats()`` in
        :meth:`host_coprocessing` to separate cold evaluation from
        cache service before comparing against the lanes).
        """
        reports = {}
        for assignment in self.assignments:
            if assignment.name not in datasets:
                raise ReproError(f"no dataset for stream {assignment.name!r}")
            dataset = self.engine.ingest(
                datasets[assignment.name],
                name=f"stream-{assignment.name}",
            )
            matches = None
            host_seconds = None
            if functional:
                host_start = time.perf_counter()
                matches = self.engine.match_bits(assignment.expr, dataset)
                host_seconds = time.perf_counter() - host_start
            soc = RawFilterSoC(
                assignment.expr,
                SoCConfig(
                    num_lanes=assignment.lanes, clock_hz=self.clock_hz
                ),
                engine=self.engine,
            )
            report = soc.run(
                dataset,
                precomputed_matches=matches,
                functional=functional,
            )
            report.host_seconds = host_seconds
            reports[assignment.name] = report
        return reports

    def aggregate_bandwidth(self, reports):
        """Sum of achieved stream bandwidths (device-level throughput)."""
        return sum(report.achieved_bandwidth
                   for report in reports.values())

    def device_seconds(self, reports):
        return max(report.seconds for report in reports.values())

    def host_seconds(self, reports):
        """Total software co-processing time across streams (the host
        evaluates streams sequentially, unlike the concurrent lanes)."""
        return sum(report.host_seconds or 0.0
                   for report in reports.values())

    def host_coprocessing(self, reports):
        """Summary of the host-vs-device co-processing model.

        Includes the shared engine's cache counters, making visible how
        much software evaluation the AtomCache absorbed across streams.
        """
        host = self.host_seconds(reports)
        device = self.device_seconds(reports)
        return {
            "host_seconds": host,
            "device_seconds": device,
            "device_speedup": host / device if device else None,
            "engine": self.engine.stats(),
        }


#: Zynq-7045-style ICAP configuration bandwidth (bytes/s)
ICAP_BYTES_PER_SECOND = 400_000_000
#: rough bitstream bytes per LUT in a partial region (frame overheads in)
BITSTREAM_BYTES_PER_LUT = 220


def reconfiguration_seconds(expr, spare_factor=1.5):
    """Partial-reconfiguration latency estimate for a raw-filter region.

    The region must be sized for the filter plus placement slack; the
    bitstream is streamed through the ICAP at its fixed bandwidth.
    """
    luts = exact_luts(expr)
    region_bytes = int(luts * spare_factor * BITSTREAM_BYTES_PER_LUT)
    return region_bytes / ICAP_BYTES_PER_SECOND


class ReconfigurableSoC:
    """A single-stream SoC whose raw filter can be swapped at run time."""

    def __init__(self, expr, config=None, engine=None):
        self.config = config or SoCConfig()
        self.expr = expr
        #: kept across reconfigurations — swapping the filter does not
        #: discard the execution layer, so the AtomCache keeps serving
        #: atoms the old and new filters share
        self.engine = engine or FilterEngine(cache=True)
        self.reconfigurations = 0
        self.reconfiguration_time = 0.0

    def reconfigure(self, expr, spare_factor=1.5):
        """Swap in a new filter; returns the downtime in seconds."""
        downtime = reconfiguration_seconds(expr, spare_factor)
        self.expr = expr
        self.reconfigurations += 1
        self.reconfiguration_time += downtime
        return downtime

    def run(self, dataset, functional=True):
        soc = RawFilterSoC(self.expr, self.config, engine=self.engine)
        return soc.run(dataset, functional=functional)

    def amortized_bandwidth(self, report):
        """Effective bytes/s including reconfiguration downtime so far."""
        busy = report.seconds + self.reconfiguration_time
        if busy == 0:
            return 0.0
        return report.total_bytes / busy
