"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class RegexSyntaxError(ReproError):
    """A regular expression string could not be parsed."""

    def __init__(self, message, pattern, position):
        super().__init__(f"{message} (pattern={pattern!r}, pos={position})")
        self.pattern = pattern
        self.position = position


class RangeBoundError(ReproError):
    """A numeric range bound is malformed or inconsistent (e.g. lo > hi)."""


class JSONParseError(ReproError):
    """Strict JSON parsing failed."""

    def __init__(self, message, position):
        super().__init__(f"{message} (at byte {position})")
        self.position = position


class JSONPathError(ReproError):
    """A JSONPath expression is unsupported or malformed."""


class QueryError(ReproError):
    """A filter-expression query is malformed."""


class SynthesisError(ReproError):
    """A circuit could not be built or technology-mapped."""


class DesignSpaceError(ReproError):
    """Design-space enumeration or exploration failed."""
