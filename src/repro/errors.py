"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class RegexSyntaxError(ReproError):
    """A regular expression string could not be parsed."""

    def __init__(self, message, pattern, position):
        super().__init__(f"{message} (pattern={pattern!r}, pos={position})")
        self.pattern = pattern
        self.position = position


class RangeBoundError(ReproError):
    """A numeric range bound is malformed or inconsistent (e.g. lo > hi)."""


class JSONParseError(ReproError):
    """Strict JSON parsing failed."""

    def __init__(self, message, position):
        super().__init__(f"{message} (at byte {position})")
        self.position = position


class JSONPathError(ReproError):
    """A JSONPath expression is unsupported or malformed."""


class QueryError(ReproError):
    """A filter-expression query is malformed."""


class WorkerCrashError(ReproError):
    """A resident worker died and the pool's respawn budget ran out.

    Raised by :class:`repro.engine.transport.ResidentWorkerPool` once
    worker deaths exceed ``max_respawns``; every batch drained before
    the crash has already been returned (and its AtomCache delta
    merged), so partial results survive the failure.
    """


class CachePersistenceError(ReproError):
    """A persisted cache artifact is unreadable (truncated/corrupt).

    Raised by :meth:`repro.engine.atom_cache.AtomCache.from_file` and by
    :class:`repro.engine.cache_store.CacheStore` when a spill file or
    disk-tier log cannot be decoded — a clear, typed signal instead of
    a raw ``EOFError``/``UnpicklingError`` escaping from pickle.
    """


class KernelVerificationError(ReproError):
    """A generated fused kernel failed static verification.

    Raised at codegen/registration time by
    :mod:`repro.analysis.kernel_verify` when a compiled kernel's source
    escapes the kernel ABI whitelist or its evaluation plan is not
    boolean-equivalent to the filter expression it claims to implement
    — a miscompile surfaces as a typed error instead of wrong bits.
    """


class SynthesisError(ReproError):
    """A circuit could not be built or technology-mapped."""


class DesignSpaceError(ReproError):
    """Design-space enumeration or exploration failed."""
