"""Findings and the checked-in baseline/suppression file.

Every static-analysis pass in :mod:`repro.analysis` reports
:class:`Finding` instances.  A finding's :meth:`~Finding.fingerprint`
deliberately excludes the line number — baselines must survive
unrelated edits shifting code up and down — and the baseline file is a
plain JSON document (``lint-baseline.json`` at the repo root) listing
the fingerprints of accepted pre-existing findings.  ``repro lint``
reports only findings *not* in the baseline and exits non-zero when any
remain; ``repro lint --update-baseline`` rewrites the file from the
current findings.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ReproError

BASELINE_FORMAT = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class Finding:
    """One static-analysis diagnostic."""

    __slots__ = ("rule", "path", "line", "symbol", "message")

    def __init__(self, rule: str, path: str, line: int, symbol: str,
                 message: str) -> None:
        self.rule = rule
        self.path = path
        self.line = line
        self.symbol = symbol
        self.message = message

    def fingerprint(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.symbol}::{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] "
            f"{self.symbol}: {self.message}"
        )

    def __repr__(self) -> str:
        return f"Finding({self.render()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())


def load_baseline(path: str) -> set[str]:
    """The fingerprint set of a baseline file (missing file = empty)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload: Any = json.load(handle)
    except FileNotFoundError:
        return set()
    except (OSError, ValueError) as err:
        raise ReproError(
            f"unreadable lint baseline {path!r}: {err}"
        ) from err
    if (
        not isinstance(payload, dict)
        or payload.get("format") != BASELINE_FORMAT
        or not isinstance(payload.get("suppressions"), list)
    ):
        raise ReproError(
            f"{path!r} is not a lint baseline file "
            f"(expected format {BASELINE_FORMAT})"
        )
    return {str(entry) for entry in payload["suppressions"]}


def save_baseline(path: str, findings: list[Finding]) -> int:
    """Write the findings' fingerprints as the new baseline."""
    suppressions = sorted({f.fingerprint() for f in findings})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"format": BASELINE_FORMAT, "suppressions": suppressions},
            handle,
            indent=2,
        )
        handle.write("\n")
    return len(suppressions)


def filter_baselined(
    findings: list[Finding], baseline: set[str]
) -> list[Finding]:
    """The findings whose fingerprints are not baselined."""
    return [
        finding for finding in findings
        if finding.fingerprint() not in baseline
    ]
