"""Annotation-driven lock-discipline checking.

The repo's real concurrency model is small and explicit: a handful of
objects (the shared :class:`~repro.engine.atom_cache.AtomCache`, the
:class:`~repro.engine.compiled.SelectivityTracker`, the resident
pool's shared-memory slot ring, the gateway metrics) are mutated from
several threads and guard their state with one lock each.  This pass
makes that discipline checkable:

* an attribute is declared *guarded* by a trailing comment on the
  assignment that introduces it::

      self._entries = OrderedDict()  # guarded-by: _lock

  module-level globals use the same comment on their defining
  assignment, naming a module-level lock::

      _KERNELS = OrderedDict()  # guarded-by: _KERNELS_LOCK

* every later read or write of a guarded attribute must happen inside
  the owning ``with self._lock:`` (or ``with _KERNELS_LOCK:``) block —
  lexically, within the same function;

* helper methods documented to be called with the lock held annotate
  their ``def`` line with ``# holds-lock: _lock``;

* an individual access can be suppressed with ``# unlocked-ok:
  <reason>`` — the justification stays next to the code.

``__init__`` bodies are exempt (construction precedes sharing).
Nested functions reset the held-lock set: a closure may run after the
enclosing ``with`` block exited, so it must take (or be annotated to
hold) the lock itself.

This is a *lexical* checker by design — no alias or interprocedural
analysis.  Accesses through anything but ``self.<attr>`` (or the bare
global name) are invisible to it; the annotations mark the owning
class's own discipline, which is where every race this repo has
actually seen lived.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .findings import Finding

GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
HOLDS_RE = re.compile(r"#\s*holds-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")
SUPPRESS_RE = re.compile(r"#\s*unlocked-ok\b")

RULE = "lock-discipline"


def _line_comment_match(
    lines: list[str], lineno: int, pattern: re.Pattern[str]
) -> str | None:
    if 1 <= lineno <= len(lines):
        match = pattern.search(lines[lineno - 1])
        if match is not None:
            return match.group(1)
    return None


def _is_self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ModuleFacts:
    """Guarded declarations harvested from one module."""

    def __init__(self) -> None:
        #: class name -> {attr -> lock attr}
        self.class_guards: dict[str, dict[str, str]] = {}
        #: module-global name -> lock global name
        self.global_guards: dict[str, str] = {}


def _harvest(tree: ast.Module, lines: list[str]) -> _ModuleFacts:
    facts = _ModuleFacts()
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            lock = _line_comment_match(lines, node.lineno, GUARDED_RE)
            if lock is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    facts.global_guards[target.id] = lock
        elif isinstance(node, ast.ClassDef):
            guards: dict[str, str] = {}
            for inner in ast.walk(node):
                if not isinstance(inner, (ast.Assign, ast.AnnAssign)):
                    continue
                lock = _line_comment_match(
                    lines, inner.lineno, GUARDED_RE
                )
                if lock is None:
                    continue
                targets = (
                    inner.targets if isinstance(inner, ast.Assign)
                    else [inner.target]
                )
                for target in targets:
                    attr = _is_self_attr(target)
                    if attr is not None:
                        guards[attr] = lock
            if guards:
                facts.class_guards[node.name] = guards
    return facts


class _AccessChecker:
    """Lexical walk of one function, tracking held locks."""

    def __init__(self, path: str, lines: list[str], symbol: str,
                 attr_guards: dict[str, str],
                 global_guards: dict[str, str],
                 findings: list[Finding]) -> None:
        self.path = path
        self.lines = lines
        self.symbol = symbol
        self.attr_guards = attr_guards
        self.global_guards = global_guards
        self.findings = findings

    def check(self, func: ast.AST, held: frozenset[str]) -> None:
        body = getattr(func, "body", [])
        for stmt in body:
            self._visit(stmt, held)

    # -- the walk -----------------------------------------------------------

    def _visit(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                self._visit(item.context_expr, held)
                lock = self._lock_name(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
            inner = held | acquired
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            # a closure can outlive the enclosing with-block
            nested = self._declared_holds(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child, nested)
            return
        attr = _is_self_attr(node)
        if attr is not None and attr in self.attr_guards:
            self._require(node, self.attr_guards[attr],
                          f"self.{attr}", held)
        elif (
            isinstance(node, ast.Name)
            and node.id in self.global_guards
        ):
            self._require(node, self.global_guards[node.id],
                          node.id, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _declared_holds(self, node: ast.AST) -> frozenset[str]:
        lock = _line_comment_match(
            self.lines, getattr(node, "lineno", 0), HOLDS_RE
        )
        return frozenset() if lock is None else frozenset({lock})

    def _lock_name(self, expr: ast.AST) -> str | None:
        attr = _is_self_attr(expr)
        if attr is not None:
            return attr
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _require(self, node: ast.AST, lock: str, what: str,
                 held: frozenset[str]) -> None:
        if lock in held:
            return
        lineno = getattr(node, "lineno", 0)
        if (
            1 <= lineno <= len(self.lines)
            and SUPPRESS_RE.search(self.lines[lineno - 1])
        ):
            return
        self.findings.append(Finding(
            RULE, self.path, lineno, self.symbol,
            f"{what} (guarded by {lock}) accessed outside "
            f"'with {lock}'",
        ))


def _function_defs(
    body: Iterable[ast.stmt],
) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def check_source(source: str, path: str) -> list[Finding]:
    """Lock-discipline findings for one module's source text."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [Finding(
            RULE, path, err.lineno or 0, "<module>",
            f"does not parse: {err.msg}",
        )]
    facts = _harvest(tree, lines)
    findings: list[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            guards = facts.class_guards.get(node.name, {})
            for func in _function_defs(node.body):
                if func.name == "__init__":
                    continue  # construction precedes sharing
                checker = _AccessChecker(
                    path, lines, f"{node.name}.{func.name}",
                    guards, facts.global_guards, findings,
                )
                held = checker._declared_holds(func)
                checker.check(func, held)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not facts.global_guards:
                continue
            checker = _AccessChecker(
                path, lines, node.name, {},
                facts.global_guards, findings,
            )
            held = checker._declared_holds(node)
            checker.check(node, held)
    return findings


def check_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as handle:
        return check_source(handle.read(), path)
