"""Drive every static-analysis pass over a source tree.

``repro lint`` calls :func:`run_lint`: the lock-discipline and
lifecycle passes walk the Python files under the given paths, and the
``kernels`` pass compiles a representative corpus of filter
expressions through the real codegen path and verifies each kernel
(source whitelist + plan equivalence) — a self-check that the codegen
currently in the tree emits only verifiable kernels.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from ..errors import KernelVerificationError, ReproError
from . import lifecycle, lockcheck
from .findings import Finding
from .kernel_verify import verify_kernel_source, verify_plan

ALL_RULES = ("locks", "lifecycle", "kernels")


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        if not os.path.isdir(path):
            raise ReproError(f"lint path {path!r} does not exist")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [
                name for name in dirnames
                if name != "__pycache__"
            ]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    yield full


def default_lint_root() -> str:
    """The installed ``repro`` package source tree."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _relpath(path: str, root: str | None) -> str:
    if root is not None:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # different drive (windows)
            return path.replace(os.sep, "/")
        if not rel.startswith(".."):
            return rel.replace(os.sep, "/")
    return path.replace(os.sep, "/")


def _kernel_corpus() -> list:
    """Representative expressions spanning every plan shape."""
    from ..core import composition as comp

    qs1 = comp.And([
        comp.group(comp.s("temperature", 1),
                   comp.v("-12.5", "43.1")),
        comp.group(comp.s("light", 1), comp.v("1345", "26282")),
    ])
    return [
        comp.s("temperature", 1),
        comp.v("0.7", "35.1"),
        comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1")),
        qs1,
        comp.And([comp.s("a", 1),
                  comp.And([comp.s("b", 1), comp.s("c", 1)])]),
        comp.Or([comp.s("taxi", 1),
                 comp.group(comp.s("fare", 1), comp.v_int(1, 50))]),
        comp.Or([qs1, comp.s("rain", 1)]),
    ]


def kernel_selfcheck() -> list[Finding]:
    """Compile + verify the representative kernel corpus."""
    from ..engine.compiled import CompiledKernel

    findings: list[Finding] = []
    for expr in _kernel_corpus():
        label = expr.notation()
        try:
            kernel = CompiledKernel(expr)
            verify_kernel_source(kernel.source, label)
            verify_plan(kernel.plan)
        except KernelVerificationError as err:
            findings.append(Finding(
                "kernel-verify", "repro/engine/compiled.py", 0,
                label, str(err),
            ))
        except Exception as err:  # codegen itself broke
            findings.append(Finding(
                "kernel-verify", "repro/engine/compiled.py", 0,
                label, f"codegen failed: {err!r}",
            ))
    return findings


def run_lint(
    paths: Iterable[str] | None = None,
    rules: Iterable[str] = ALL_RULES,
    root: str | None = None,
) -> list[Finding]:
    """Every finding of the selected rules over the selected paths.

    ``paths`` defaults to the installed ``repro`` package source;
    ``root`` (defaulting to the parent of that tree) makes reported
    paths relative, so baselines are location-independent.
    """
    rules = tuple(rules)
    for rule in rules:
        if rule not in ALL_RULES:
            raise ReproError(
                f"unknown lint rule {rule!r} "
                f"(known: {', '.join(ALL_RULES)})"
            )
    if paths is None:
        package_root = default_lint_root()
        paths = [package_root]
        if root is None:
            root = os.path.dirname(package_root)
    findings: list[Finding] = []
    if "locks" in rules or "lifecycle" in rules:
        for path in iter_python_files(paths):
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            rel = _relpath(os.path.abspath(path), root)
            if "locks" in rules:
                findings.extend(lockcheck.check_source(source, rel))
            if "lifecycle" in rules:
                findings.extend(lifecycle.check_source(source, rel))
    if "kernels" in rules:
        findings.extend(kernel_selfcheck())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
