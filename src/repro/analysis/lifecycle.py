"""Resource-lifecycle linting for the hazards this repo lives with.

Three rules, each encoding a failure mode the engine has real
machinery to prevent:

* ``source-close`` — a :class:`~repro.engine.sources.ChunkSource`
  constructed and bound to a local must reach an ownership sink inside
  the same function: a ``with`` statement, a ``.close()`` call,
  a ``return``/``yield`` (ownership transfer to the caller), storage
  on an object/container, or being passed onward as a call argument
  (transfer to the callee).  Otherwise the file handle / mmap /
  prefetch thread it owns leaks.

* ``escaped-memoryview`` — a ``memoryview`` (or a slice of one) stored
  onto ``self`` or appended to an attribute pins its exporting buffer;
  for :class:`~repro.engine.sources.MmapSource` windows that means the
  mmap cannot close (``BufferError``).  Classes that *track* their
  views and ``release()`` them in a teardown path are allowed — the
  rule looks for a ``.release(`` call anywhere in the class.

* ``shm-finalize`` — a class creating ``SharedMemory(create=True)``
  segments must have a finalize path: either a
  ``weakref.finalize(...)`` registration or an ``.unlink()`` call
  somewhere in the class.  Segments without one outlive the process in
  ``/dev/shm``.

Any finding can be suppressed inline with ``# lifecycle-ok: <reason>``
on the offending line, or through the checked-in baseline file.
"""

from __future__ import annotations

import ast
import re

from .findings import Finding

#: constructors whose result owns an OS resource until closed
SOURCE_CONSTRUCTORS = frozenset({
    "FileSource", "MmapSource", "SocketSource", "ReadaheadSource",
    "AsyncSource",
})

SUPPRESS_RE = re.compile(r"#\s*lifecycle-ok\b")


def _suppressed(lines: list[str], lineno: int) -> bool:
    return (
        1 <= lineno <= len(lines)
        and SUPPRESS_RE.search(lines[lineno - 1]) is not None
    )


def _call_name(node: ast.AST) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ---------------------------------------------------------------------------
# source-close
# ---------------------------------------------------------------------------

class _SourceUse(ast.NodeVisitor):
    """How one bound source name is used inside its function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.sunk = False

    def _is_name(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == self.name

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and self._is_name(func.value)
            and func.attr == "close"
        ):
            self.sunk = True  # explicitly closed
        if any(self._is_name(arg) for arg in node.args) or any(
            self._is_name(kw.value) for kw in node.keywords
        ):
            self.sunk = True  # ownership handed to the callee
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._mentions(node.value):
            self.sunk = True
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if node.value is not None and self._mentions(node.value):
            self.sunk = True
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if self._mentions(item.context_expr):
                self.sunk = True
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        for item in node.items:
            if self._mentions(item.context_expr):
                self.sunk = True
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_name(node.value):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    self.sunk = True  # stored on an object/container
        self.generic_visit(node)

    def _mentions(self, node: ast.AST) -> bool:
        return any(
            self._is_name(inner) for inner in ast.walk(node)
        )


def _check_sources(
    func: ast.FunctionDef | ast.AsyncFunctionDef, path: str,
    lines: list[str], symbol: str, findings: list[Finding],
) -> None:
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        ctor = _call_name(node.value)
        if ctor not in SOURCE_CONSTRUCTORS:
            continue
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            continue
        name = node.targets[0].id
        if _suppressed(lines, node.lineno):
            continue
        use = _SourceUse(name)
        use.visit(func)
        if not use.sunk:
            findings.append(Finding(
                "source-close", path, node.lineno, symbol,
                f"{ctor} bound to {name!r} is never closed, "
                "entered as a context manager, or handed off",
            ))


# ---------------------------------------------------------------------------
# escaped-memoryview
# ---------------------------------------------------------------------------

def _class_releases_views(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if _call_name(node) == "release":
            return True
    return False


def _check_memoryviews(
    cls: ast.ClassDef, path: str, lines: list[str],
    findings: list[Finding],
) -> None:
    if _class_releases_views(cls):
        return
    for func in cls.body:
        if not isinstance(
            func, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        view_locals: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_view = _call_name(value) == "memoryview" or (
                isinstance(value, ast.Subscript)
                and isinstance(value.value, ast.Name)
                and value.value.id in view_locals
            )
            if is_view and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    view_locals.add(target.id)
                elif (
                    isinstance(target, ast.Attribute)
                    and not _suppressed(lines, node.lineno)
                ):
                    findings.append(Finding(
                        "escaped-memoryview", path, node.lineno,
                        f"{cls.name}.{func.name}",
                        "memoryview stored on an attribute in a "
                        "class with no release() path — the "
                        "exporting buffer can never close",
                    ))
        if not view_locals:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) != "append":
                continue
            if not any(
                isinstance(arg, ast.Name) and arg.id in view_locals
                for arg in node.args
            ):
                continue
            if _suppressed(lines, node.lineno):
                continue
            findings.append(Finding(
                "escaped-memoryview", path, node.lineno,
                f"{cls.name}.{func.name}",
                "memoryview appended to a container in a class "
                "with no release() path — the exporting buffer "
                "can never close",
            ))


# ---------------------------------------------------------------------------
# shm-finalize
# ---------------------------------------------------------------------------

def _creates_shm(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if _call_name(node) != "SharedMemory":
        return False
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _has_finalize_path(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        name = _call_name(node)
        if name in ("finalize", "unlink"):
            return True
    return False


def _check_shm(
    cls: ast.ClassDef, path: str, lines: list[str],
    findings: list[Finding],
) -> None:
    for node in ast.walk(cls):
        if not _creates_shm(node):
            continue
        lineno = getattr(node, "lineno", 0)
        if _suppressed(lines, lineno):
            continue
        if not _has_finalize_path(cls):
            findings.append(Finding(
                "shm-finalize", path, lineno, cls.name,
                "SharedMemory(create=True) in a class with no "
                "weakref.finalize or unlink() path — segments "
                "outlive the process",
            ))


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def check_source(source: str, path: str) -> list[Finding]:
    """Lifecycle findings for one module's source text."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [Finding(
            "source-close", path, err.lineno or 0, "<module>",
            f"does not parse: {err.msg}",
        )]
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _check_memoryviews(node, path, lines, findings)
            _check_shm(node, path, lines, findings)
    scopes: list[tuple[str, ast.AST]] = [("<module>", tree)]
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for func in node.body:
                if isinstance(
                    func, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    scopes.append(
                        (f"{node.name}.{func.name}", func)
                    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node.name, node))
    for symbol, scope in scopes:
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_sources(scope, path, lines, symbol, findings)
    return findings


def check_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as handle:
        return check_source(handle.read(), path)
