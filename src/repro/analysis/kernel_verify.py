"""Static verification of generated fused kernels.

The compiled backend (:mod:`repro.engine.compiled`) *generates and
executes code*: per-filter kernel source built by string emission,
``compile()``d and ``exec``'d into the process.  Two things can go
wrong with that, and both would corrupt results silently at scale:

* the generated source could escape the kernel ABI (call something it
  must not, reach an attribute it must not) — a codegen bug or a
  corrupted emission template becomes arbitrary code execution inside
  the hot path;
* the evaluation *plan* the kernel implements (selectivity-ordered,
  short-circuiting, prefilter-augmented) could fail to be
  boolean-equivalent to the filter expression it claims to implement —
  a miscompile that returns plausible-but-wrong bits.

This module proves both properties per kernel, memoised by filter
fingerprint so the warm path pays one set lookup:

1. :func:`verify_kernel_source` parses the generated source into an
   AST and checks it against a strict **whitelist**: allowed node
   types only, allowed names only (the step/constant naming scheme and
   the driver's locals), no imports, and no attribute access except
   the kernel ABI (``ctx.<method>`` for the audited context methods,
   ``state.n_active``).

2. :func:`verify_plan` proves the plan boolean-equivalent to the
   original expression by **exhaustive truth assignment** over the
   expression's variables (primitives and structural groups — small
   sets in practice).  Assignments that are semantically impossible at
   record level are excluded: a group can only match a record in which
   every child fired somewhere, so ``group ⇒ child`` record-level
   implications constrain the space.  AND plans additionally require
   every prefilter step to be a *necessary condition* on its own —
   the ordering logic is free to drop or reorder prefilters, so their
   soundness must not depend on the exact steps running first.

Failures raise the typed
:class:`~repro.errors.KernelVerificationError` at codegen/registration
time, wired in behind ``EngineConfig(verify_kernels=...)`` (on by
default under pytest and in ``repro serve``).
"""

from __future__ import annotations

import ast
import itertools
import random
import re
import threading
from collections import OrderedDict
from typing import Any, Iterable, Iterator, Protocol

from ..core import composition as comp
from ..errors import KernelVerificationError

#: past this many variables the truth table is sampled, not exhausted
MAX_EXHAUSTIVE_VARIABLES = 14
#: deterministic assignment sample size for very wide expressions
SAMPLED_ASSIGNMENTS = 2048
#: verified-fingerprint memo bound (mirrors the kernel registry LRU —
#: design-space sweeps verify many one-shot candidate filters)
VERIFIED_CACHE_SIZE = 4096


class _PlanLike(Protocol):
    """Duck type of :class:`repro.engine.compiled.KernelPlan`."""

    expr: Any
    mode: str
    steps: tuple[Any, ...]


class _KernelLike(Protocol):
    """Duck type of :class:`repro.engine.compiled.CompiledKernel`."""

    expr: Any
    plan: Any
    source: str


# ---------------------------------------------------------------------------
# source whitelist
# ---------------------------------------------------------------------------

#: the only AST statement/expression node types generated kernels use
_ALLOWED_NODES: tuple[type[ast.AST], ...] = (
    ast.Module, ast.FunctionDef, ast.arguments, ast.arg,
    ast.Expr, ast.Assign, ast.AugAssign, ast.Return,
    ast.If, ast.For, ast.Break,
    ast.Name, ast.Attribute, ast.Call, ast.Constant,
    ast.Subscript, ast.Tuple, ast.Compare,
    ast.Is, ast.Eq, ast.Sub,
    ast.Load, ast.Store,
)

#: names the generated source may reference, beyond per-step constants
_ALLOWED_NAME = re.compile(
    r"\A(?:ctx|state|order|bits|index|remaining|kernel|len|_STEPS"
    r"|_step_\d+|ATOM_\d+|NEEDLE_\d+|BLOCK_\d+)\Z"
)

#: the kernel ABI: the audited context methods generated steps call
ALLOWED_CTX_METHODS = frozenset({
    "precomputed_bits", "string_bits", "atom_bits", "store",
    "refine", "accumulate", "note_skipped", "finish",
})
#: the only state attribute the generated driver reads
ALLOWED_STATE_ATTRS = frozenset({"n_active"})

#: functions callable by bare name inside a kernel
_ALLOWED_NAME_CALLS = re.compile(r"\A(?:len|_step_\d+)\Z")


def _violation(node: ast.AST, reason: str) -> str:
    line = getattr(node, "lineno", 0)
    return f"line {line}: {reason}"


def _check_attribute(node: ast.Attribute) -> str | None:
    base = node.value
    if not isinstance(base, ast.Name):
        return _violation(
            node, f"attribute access on a non-name base ({node.attr!r})"
        )
    if base.id == "ctx":
        if node.attr not in ALLOWED_CTX_METHODS:
            return _violation(
                node,
                f"ctx.{node.attr} is outside the kernel ABI "
                f"(allowed: {', '.join(sorted(ALLOWED_CTX_METHODS))})",
            )
        return None
    if base.id == "state":
        if node.attr not in ALLOWED_STATE_ATTRS:
            return _violation(
                node, f"state.{node.attr} is not a readable state slot"
            )
        return None
    return _violation(
        node, f"attribute escape: {base.id}.{node.attr}"
    )


def _check_call(node: ast.Call) -> str | None:
    if node.keywords:
        return _violation(node, "keyword arguments in a kernel call")
    func = node.func
    if isinstance(func, ast.Attribute):
        return None  # the attribute check already constrains it
    if isinstance(func, ast.Name):
        if not _ALLOWED_NAME_CALLS.match(func.id):
            return _violation(
                node, f"call to disallowed name {func.id!r}"
            )
        return None
    if isinstance(func, ast.Subscript):
        base = func.value
        if isinstance(base, ast.Name) and base.id == "_STEPS":
            return None
        return _violation(node, "call through a non-_STEPS subscript")
    return _violation(node, "call through a disallowed expression")


def source_violations(source: str) -> list[str]:
    """Whitelist violations of one generated kernel source (may be
    empty).  ``verify_kernel_source`` raises on any."""
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [f"generated source does not parse: {err}"]
    violations: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            violations.append(_violation(
                node,
                f"disallowed construct {type(node).__name__}",
            ))
            continue
        if isinstance(node, ast.Name):
            if not _ALLOWED_NAME.match(node.id):
                violations.append(_violation(
                    node, f"disallowed name {node.id!r}"
                ))
        elif isinstance(node, ast.Attribute):
            problem = _check_attribute(node)
            if problem is not None:
                violations.append(problem)
        elif isinstance(node, ast.Call):
            problem = _check_call(node)
            if problem is not None:
                violations.append(problem)
        elif isinstance(node, ast.FunctionDef):
            if node.name != "kernel" and not re.match(
                r"\A_step_\d+\Z", node.name
            ):
                violations.append(_violation(
                    node, f"disallowed function name {node.name!r}"
                ))
            if node.decorator_list:
                violations.append(_violation(
                    node, "decorators are not part of the kernel ABI"
                ))
    return violations


def verify_kernel_source(source: str, label: str = "kernel") -> None:
    """Raise :class:`KernelVerificationError` on any whitelist escape."""
    violations = source_violations(source)
    if violations:
        raise KernelVerificationError(
            f"generated kernel for {label} escapes the ABI whitelist: "
            + "; ".join(violations[:8])
        )


# ---------------------------------------------------------------------------
# plan equivalence
# ---------------------------------------------------------------------------

def _collect_variables(
    expr: Any, variables: OrderedDict[str, Any],
    groups: dict[str, Any],
) -> None:
    """Walk an expression, registering primitive/group variables."""
    if isinstance(expr, (comp.And, comp.Or)):
        for child in expr.children:
            _collect_variables(child, variables, groups)
        return
    key = expr.cache_key()
    variables.setdefault(key, expr)
    if isinstance(expr, comp.Group):
        groups.setdefault(key, expr)
        for child in expr.children:
            _collect_variables(child, variables, groups)


def _expr_value(expr: Any, assignment: dict[str, bool]) -> bool:
    """Truth value of an expression under one variable assignment."""
    if isinstance(expr, comp.And):
        return all(
            _expr_value(child, assignment) for child in expr.children
        )
    if isinstance(expr, comp.Or):
        return any(
            _expr_value(child, assignment) for child in expr.children
        )
    return assignment[expr.cache_key()]


def _consistent(
    groups: dict[str, Any], assignment: dict[str, bool]
) -> bool:
    """Record-level possibility: a matching group implies every child
    fired somewhere in the record."""
    for key, group in groups.items():
        if not assignment[key]:
            continue
        for child in group.children:
            if not assignment[child.cache_key()]:
                return False
    return True


def _assignments(
    keys: list[str], seed: int = 0
) -> Iterator[dict[str, bool]]:
    """All (or a deterministic sample of) truth assignments."""
    count = len(keys)
    if count <= MAX_EXHAUSTIVE_VARIABLES:
        for values in itertools.product((False, True), repeat=count):
            yield dict(zip(keys, values))
        return
    # very wide expressions: corner assignments plus a seeded sample
    yield dict.fromkeys(keys, False)
    yield dict.fromkeys(keys, True)
    for flipped in keys:
        yield {key: key != flipped for key in keys}
        yield {key: key == flipped for key in keys}
    rng = random.Random(seed)
    for _ in range(SAMPLED_ASSIGNMENTS):
        yield {key: rng.random() < 0.5 for key in keys}


def _fail(plan: _PlanLike, reason: str) -> KernelVerificationError:
    return KernelVerificationError(
        f"plan for {plan.expr.notation()} is not equivalent to its "
        f"expression: {reason}"
    )


def plan_violations(plan: _PlanLike) -> list[str]:
    """Equivalence violations of one evaluation plan (may be empty).

    Checks both structure (modes, kinds, step indexing — an inverted
    short-circuit shows up as a ``disjunct`` step inside an AND plan
    or vice versa) and semantics (truth-table equivalence over every
    record-level-consistent assignment).
    """
    violations: list[str] = []
    if plan.mode not in ("and", "or"):
        return [f"unknown plan mode {plan.mode!r}"]
    expected_kinds = (
        {"disjunct"} if plan.mode == "or" else {"exact", "prefilter"}
    )
    for position, step in enumerate(plan.steps):
        if step.index != position:
            violations.append(
                f"step #{position} carries index {step.index} — the "
                "dispatch table would run the wrong step"
            )
        if step.kind not in expected_kinds:
            violations.append(
                f"step #{position} kind {step.kind!r} inverts the "
                f"{plan.mode!r} plan's short-circuit semantics"
            )
    if violations:
        return violations
    variables: OrderedDict[str, Any] = OrderedDict()
    groups: dict[str, Any] = {}
    try:
        _collect_variables(plan.expr, variables, groups)
        for step in plan.steps:
            _collect_variables(step.atom, variables, groups)
    except AttributeError as err:
        return [f"plan holds a non-expression atom: {err}"]
    keys = list(variables)
    exact = [s for s in plan.steps if s.kind == "exact"]
    prefilters = [s for s in plan.steps if s.kind == "prefilter"]
    disjuncts = [s for s in plan.steps if s.kind == "disjunct"]
    for assignment in _assignments(keys):
        if not _consistent(groups, assignment):
            continue
        reference = _expr_value(plan.expr, assignment)
        if plan.mode == "or":
            planned = any(
                _expr_value(s.atom, assignment) for s in disjuncts
            )
            if planned != reference:
                violations.append(
                    "disjunct steps compute "
                    f"{planned} where the expression is {reference} "
                    f"under {_describe(variables, assignment)}"
                )
                break
            continue
        planned = all(_expr_value(s.atom, assignment) for s in exact)
        if planned != reference:
            violations.append(
                "exact steps compute "
                f"{planned} where the expression is {reference} "
                f"under {_describe(variables, assignment)}"
            )
            break
        if not reference:
            continue
        for step in prefilters:
            # prefilters may run in any order, or not at all — each
            # must be a necessary condition of the whole expression
            if not _expr_value(step.atom, assignment):
                violations.append(
                    f"prefilter {step.atom.notation()} rejects a "
                    "record the expression accepts under "
                    f"{_describe(variables, assignment)}"
                )
                break
        if violations:
            break
    return violations


def _describe(
    variables: OrderedDict[str, Any], assignment: dict[str, bool]
) -> str:
    true_atoms = [
        atom.notation() for key, atom in variables.items()
        if assignment[key]
    ]
    return "{" + ", ".join(sorted(true_atoms)) + "}"


def verify_plan(plan: _PlanLike) -> None:
    """Raise :class:`KernelVerificationError` unless the plan is
    boolean-equivalent to its expression."""
    violations = plan_violations(plan)
    if violations:
        raise _fail(plan, "; ".join(violations[:4]))


# ---------------------------------------------------------------------------
# memoised kernel verification (the codegen-time hook)
# ---------------------------------------------------------------------------

_VERIFIED: OrderedDict[Any, bool] = OrderedDict()  # guarded-by: _VERIFIED_LOCK
_VERIFIED_LOCK = threading.Lock()


def verify_kernel(kernel: _KernelLike) -> bool:
    """Verify one compiled kernel (source whitelist + plan equivalence).

    Returns ``True`` when verification actually ran and ``False`` on a
    fingerprint-memo hit — the warm path (every batch after a filter's
    first) costs one lock + dict lookup, which is what keeps
    ``verify_kernels=True`` measurable-regression-free.
    """
    key = kernel.expr.cache_key()
    with _VERIFIED_LOCK:
        if key in _VERIFIED:
            _VERIFIED.move_to_end(key)
            return False
    verify_kernel_source(kernel.source, kernel.expr.notation())
    verify_plan(kernel.plan)
    with _VERIFIED_LOCK:
        _VERIFIED[key] = True
        while len(_VERIFIED) > VERIFIED_CACHE_SIZE:
            _VERIFIED.popitem(last=False)
    return True


def verified_count() -> int:
    with _VERIFIED_LOCK:
        return len(_VERIFIED)


def clear_verified() -> None:
    """Drop the verified-fingerprint memo (tests)."""
    with _VERIFIED_LOCK:
        _VERIFIED.clear()


def iter_verify(kernels: Iterable[_KernelLike]) -> Iterator[str]:
    """Yield a failure message per kernel that fails verification."""
    for kernel in kernels:
        try:
            verify_kernel_source(
                kernel.source, kernel.expr.notation()
            )
            verify_plan(kernel.plan)
        except KernelVerificationError as err:
            yield str(err)
