"""Static analysis & verification for the repro codebase.

Three passes, all reachable through ``repro lint`` (and the first also
wired into the engine itself):

* :mod:`~repro.analysis.kernel_verify` — proves every generated fused
  kernel stays inside the kernel ABI whitelist and that its evaluation
  plan is boolean-equivalent to the filter expression
  (``EngineConfig(verify_kernels=...)`` turns this on per engine; it
  defaults on under pytest and in ``repro serve``);
* :mod:`~repro.analysis.lockcheck` — ``# guarded-by:``-annotation-
  driven lock-discipline checking over the codebase's shared state;
* :mod:`~repro.analysis.lifecycle` — resource-lifecycle rules
  (unclosed chunk sources, escaped memoryviews, shm without a
  finalize path).
"""

from ..errors import KernelVerificationError
from .findings import (
    DEFAULT_BASELINE_NAME,
    Finding,
    filter_baselined,
    load_baseline,
    save_baseline,
)
from .kernel_verify import (
    clear_verified,
    plan_violations,
    source_violations,
    verified_count,
    verify_kernel,
    verify_kernel_source,
    verify_plan,
)
from .runner import (
    ALL_RULES,
    default_lint_root,
    iter_python_files,
    kernel_selfcheck,
    run_lint,
)

__all__ = [
    "ALL_RULES",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "KernelVerificationError",
    "clear_verified",
    "default_lint_root",
    "filter_baselined",
    "iter_python_files",
    "kernel_selfcheck",
    "load_baseline",
    "plan_violations",
    "run_lint",
    "save_baseline",
    "source_violations",
    "verified_count",
    "verify_kernel",
    "verify_kernel_source",
    "verify_plan",
]
