"""Static timing estimation for mapped circuits.

The paper's line-rate claim rests on every raw-filter lane closing timing
at 200 MHz on a Zynq-7000 (-2 speed grade).  After technology mapping we
know the LUT depth of every register-to-register path, so a first-order
timing model — LUT delay plus average routing delay per level, plus
clocking overheads — estimates the achievable clock.

The constants are typical 7-series numbers (LUT6 ~0.12 ns logic delay,
~0.6 ns net delay at moderate utilisation, ~0.6 ns clk-to-q + setup).
This is an estimator, not a replacement for place-and-route; its job is
to confirm the *shape* of the claim: the paper's primitives are shallow
enough that one byte per cycle at 200 MHz is comfortable.
"""

from __future__ import annotations


class TimingModel:
    """First-order 7-series timing parameters (nanoseconds)."""

    def __init__(self, lut_delay_ns=0.12, net_delay_ns=0.60,
                 clk_to_q_ns=0.35, setup_ns=0.25):
        self.lut_delay_ns = lut_delay_ns
        self.net_delay_ns = net_delay_ns
        self.clk_to_q_ns = clk_to_q_ns
        self.setup_ns = setup_ns

    def critical_path_ns(self, lut_depth):
        """Register-to-register delay for a path through ``lut_depth`` LUTs."""
        logic = lut_depth * (self.lut_delay_ns + self.net_delay_ns)
        return self.clk_to_q_ns + logic + self.setup_ns

    def fmax_hz(self, lut_depth):
        period = self.critical_path_ns(max(1, lut_depth))
        return 1e9 / period


def estimate_fmax(circuit, model=None, k=6):
    """Estimated maximum clock frequency of a circuit, in Hz.

    Uses depth-oriented mapping (a timing-driven tool trades a little
    area for shorter paths; our LUT *counts* always use area mode).
    """
    model = model or TimingModel()
    network = circuit.map_luts(k=k, mode="depth")
    return model.fmax_hz(network.depth)


def meets_clock(circuit, clock_hz=200_000_000, model=None, k=6):
    """Does the mapped circuit close timing at the paper's 200 MHz?"""
    return estimate_fmax(circuit, model=model, k=k) >= clock_hz
