"""Cut-based technology mapping of AIGs onto K-input LUTs.

This is the stage that turns a primitive's boolean network into an FPGA
LUT count — the resource axis of every trade-off plot in the paper.  The
algorithm is the classic priority-cut flow used by FPGA mappers:

1. enumerate up to ``cuts_per_node`` K-feasible cuts per AND node
   (bottom-up cross-merging of fanin cuts, plus the trivial cut),
2. rank cuts by (area flow, depth) and keep the best few,
3. select a best cut per node, then
4. cover the network from the outputs, instantiating one LUT per chosen
   cut, with truth tables extracted from the AIG cone.

Output-literal complementation is folded into the LUT truth table (LUTs
implement arbitrary functions, so inversions are free — as on a real
FPGA).  The mapped :class:`LUTNetwork` can be simulated and is verified
against the AIG by the test suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import SynthesisError
from .aig import FALSE, TRUE, node_of, sign_of


class LUT:
    """A single K-input lookup table."""

    __slots__ = ("node", "leaves", "truth")

    def __init__(self, node, leaves, truth):
        self.node = node        # AIG node this LUT computes (positive phase)
        self.leaves = leaves    # ordered list of AIG node indices
        self.truth = truth      # int truth table over the leaves

    def evaluate(self, leaf_values):
        index = 0
        for position, value in enumerate(leaf_values):
            if value:
                index |= 1 << position
        return bool(self.truth >> index & 1)

    def __repr__(self):
        return f"LUT(node={self.node}, k={len(self.leaves)})"


class LUTNetwork:
    """Result of technology mapping: LUTs + how outputs read them."""

    def __init__(self, aig, luts, output_literals):
        self.aig = aig
        self.luts = luts                      # topologically ordered
        self.output_literals = output_literals
        self._lut_of_node = {lut.node: lut for lut in luts}

    @property
    def num_luts(self):
        return len(self.luts)

    @property
    def depth(self):
        level = {}
        for lut in self.luts:
            level[lut.node] = 1 + max(
                (level.get(leaf, 0) for leaf in lut.leaves), default=0
            )
        return max(level.values(), default=0)

    def evaluate(self, input_values):
        """Evaluate all output literals for a dict of PI node -> bool."""
        values = {0: False}
        values.update(input_values)
        for lut in self.luts:
            values[lut.node] = lut.evaluate(
                [values[leaf] for leaf in lut.leaves]
            )
        results = []
        for literal in self.output_literals:
            if literal == FALSE:
                results.append(False)
                continue
            if literal == TRUE:
                results.append(True)
                continue
            value = values[node_of(literal)]
            results.append(bool(value ^ sign_of(literal)))
        return results


class _CutInfo:
    __slots__ = ("leaves", "depth", "area_flow")

    def __init__(self, leaves, depth, area_flow):
        self.leaves = leaves
        self.depth = depth
        self.area_flow = area_flow


def map_to_luts(aig, output_literals, k=6, cuts_per_node=8, mode="area"):
    """Map the cone of ``output_literals`` onto K-input LUTs.

    Returns a :class:`LUTNetwork`.  ``k=6`` models the 6-input LUTs of the
    paper's Zynq-7000 target (7-series slices).  ``mode`` selects the cut
    ranking: ``"area"`` (area flow first — the default, used for all LUT
    counts) or ``"depth"`` (logic depth first — what timing-driven
    synthesis does; used by the timing estimator).
    """
    if k < 2:
        raise SynthesisError("k must be at least 2")
    if mode == "area":
        rank = lambda c: (c.area_flow, c.depth, len(c.leaves))
    elif mode == "depth":
        rank = lambda c: (c.depth, c.area_flow, len(c.leaves))
    else:
        raise SynthesisError(f"unknown mapping mode {mode!r}")

    roots = [node_of(lit) for lit in output_literals
             if node_of(lit) != 0 and not aig.is_input(node_of(lit))]
    cone = aig.cone_nodes(output_literals)
    if not cone:
        return LUTNetwork(aig, [], list(output_literals))

    # fanout estimate for area flow (within the cone)
    fanout = {}
    for node in cone:
        for fin in (aig.fanin0[node], aig.fanin1[node]):
            fin_node = node_of(fin)
            fanout[fin_node] = fanout.get(fin_node, 0) + 1
    for root in roots:
        fanout[root] = fanout.get(root, 0) + 1

    best = {}

    def leaf_info(node):
        info = best.get(node)
        if info is not None:
            return info.depth, info.area_flow
        return 0, 0.0  # PI or constant

    ordered = sorted(cone)
    cuts = {}
    for node in ordered:
        fanin_nodes = (node_of(aig.fanin0[node]), node_of(aig.fanin1[node]))
        candidate_sets = []
        for side in fanin_nodes:
            if side in cuts:
                candidate_sets.append([c.leaves for c in cuts[side]])
            else:
                candidate_sets.append([frozenset((side,))]
                                      if side != 0 else [frozenset()])
        merged = set()
        for left in candidate_sets[0]:
            for right in candidate_sets[1]:
                union = left | right
                if len(union) <= k:
                    merged.add(union)
        infos = []
        node_fanout = max(fanout.get(node, 1), 1)
        for leaves in merged:
            depth = 1 + max((leaf_info(leaf)[0] for leaf in leaves),
                            default=0)
            flow = (1.0 + sum(leaf_info(leaf)[1] for leaf in leaves)) \
                / node_fanout
            infos.append(_CutInfo(leaves, depth, flow))
        infos.sort(key=rank)
        best[node] = infos[0]
        # keep the trivial cut so fanouts can choose to "cut here", but it
        # must never be selected as this node's own implementation
        trivial = _CutInfo(frozenset((node,)), best[node].depth,
                           best[node].area_flow)
        cuts[node] = infos[: cuts_per_node - 1] + [trivial]

    # cover from the roots
    chosen = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in chosen:
            continue
        info = best[node]
        chosen[node] = info
        for leaf in info.leaves:
            if leaf in cone and leaf not in chosen:
                stack.append(leaf)

    luts = []
    for node in sorted(chosen):
        info = chosen[node]
        leaves = sorted(info.leaves)
        truth = aig.cut_truth_table(2 * node, leaves)
        luts.append(LUT(node, leaves, truth))
    return LUTNetwork(aig, luts, list(output_literals))


def lut_count(aig, output_literals, k=6):
    """Shorthand: number of K-LUTs needed for the given outputs."""
    return map_to_luts(aig, output_literals, k=k).num_luts


def verify_mapping(aig, network, trials=64, seed=0):
    """Check LUTNetwork ≡ AIG on random input vectors. Returns True/False."""
    rng = np.random.default_rng(seed)
    literals = network.output_literals
    for _ in range(trials):
        assignment = {
            node: bool(rng.integers(0, 2)) for node in aig.inputs
        }
        want = aig.eval_literals(literals, assignment)
        got = network.evaluate(assignment)
        if want != got:
            return False
    return True
