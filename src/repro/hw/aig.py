"""And-Inverter Graphs (AIGs) with structural hashing.

The AIG is the boolean-network representation every primitive circuit is
built on.  Literals are encoded the usual way: ``literal = 2 * node + sign``
where ``sign=1`` means complemented.  Node 0 is the constant FALSE, so
``FALSE = 0`` and ``TRUE = 1`` as literals.

Structural hashing plus the standard two-level simplification rules mean
that shared logic (e.g. the many byte comparators of a substring matcher
that all look at the same 8 input bits) is built only once — this sharing
is precisely why the paper's substring matcher maps to so few LUTs, and we
reproduce the effect mechanically rather than assuming it.
"""

from __future__ import annotations

import numpy as np

from ..errors import SynthesisError

FALSE = 0
TRUE = 1


def lit_of(node, sign=0):
    return 2 * node + sign


def node_of(literal):
    return literal >> 1

def sign_of(literal):
    return literal & 1


class AIG:
    """A combinational and-inverter graph.

    Node storage is flat: ``fanin0``/``fanin1`` hold the two input literals
    of each AND node; primary inputs and the constant have sentinel fanins.
    """

    _PI_SENTINEL = -1

    def __init__(self):
        # node 0 is constant false
        self.fanin0 = [self._PI_SENTINEL]
        self.fanin1 = [self._PI_SENTINEL]
        self.inputs = []  # node indices of primary inputs
        self.input_names = {}
        self._strash = {}

    # -- construction ------------------------------------------------------

    @property
    def num_nodes(self):
        return len(self.fanin0)

    @property
    def num_ands(self):
        return self.num_nodes - 1 - len(self.inputs)

    def add_input(self, name=None):
        """Create a primary input; returns its (positive) literal."""
        node = self.num_nodes
        self.fanin0.append(self._PI_SENTINEL)
        self.fanin1.append(self._PI_SENTINEL)
        self.inputs.append(node)
        if name is not None:
            self.input_names[node] = name
        return lit_of(node)

    def is_input(self, node):
        return self.fanin0[node] == self._PI_SENTINEL and node != 0

    def is_const(self, node):
        return node == 0

    def land(self, a, b):
        """AND of two literals, with simplification and strashing."""
        if a > b:
            a, b = b, a
        # constant / trivial rules
        if a == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if a == b:
            return a
        if a ^ b == 1:  # a AND NOT a
            return FALSE
        key = (a, b)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        node = self.num_nodes
        self.fanin0.append(a)
        self.fanin1.append(b)
        literal = lit_of(node)
        self._strash[key] = literal
        return literal

    @staticmethod
    def lnot(a):
        return a ^ 1

    def lor(self, a, b):
        return self.lnot(self.land(self.lnot(a), self.lnot(b)))

    def lxor(self, a, b):
        return self.lor(self.land(a, self.lnot(b)), self.land(self.lnot(a), b))

    def lxnor(self, a, b):
        return self.lnot(self.lxor(a, b))

    def mux(self, sel, if_true, if_false):
        return self.lor(self.land(sel, if_true),
                        self.land(self.lnot(sel), if_false))

    def implies(self, a, b):
        return self.lor(self.lnot(a), b)

    def and_reduce(self, literals):
        """Balanced AND tree over an iterable of literals."""
        return self._reduce(list(literals), self.land, TRUE)

    def or_reduce(self, literals):
        """Balanced OR tree over an iterable of literals."""
        return self._reduce(list(literals), self.lor, FALSE)

    def xor_reduce(self, literals):
        return self._reduce(list(literals), self.lxor, FALSE)

    def _reduce(self, items, op, identity):
        if not items:
            return identity
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                nxt.append(op(items[i], items[i + 1]))
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    # -- analysis ----------------------------------------------------------

    def topological_nodes(self):
        """All node indices in topological (creation) order.

        Construction order is already topological because ``land`` only
        references existing nodes.
        """
        return range(self.num_nodes)

    def cone_nodes(self, roots):
        """AND nodes in the transitive fanin of the given root literals."""
        seen = set()
        stack = [node_of(r) for r in roots]
        cone = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if self.is_input(node) or self.is_const(node):
                continue
            cone.add(node)
            stack.append(node_of(self.fanin0[node]))
            stack.append(node_of(self.fanin1[node]))
        return cone

    def levels(self, roots=None):
        """Logic depth per node (PIs/const at level 0)."""
        level = np.zeros(self.num_nodes, dtype=np.int64)
        for node in range(1, self.num_nodes):
            if self.is_input(node):
                continue
            level[node] = 1 + max(
                level[node_of(self.fanin0[node])],
                level[node_of(self.fanin1[node])],
            )
        return level

    # -- simulation ----------------------------------------------------------

    def simulate(self, input_values):
        """Bit-parallel simulation.

        Args:
            input_values: dict mapping PI node -> uint64 word (64 patterns
                in parallel) or bool/int.
        Returns:
            numpy uint64 array ``values`` indexed by node; evaluate a
            literal with :func:`literal_value`.
        """
        values = np.zeros(self.num_nodes, dtype=np.uint64)
        all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        for node in self.inputs:
            raw = input_values.get(node, 0)
            if raw is True:
                raw = all_ones
            elif raw is False:
                raw = 0
            values[node] = np.uint64(raw)
        fanin0 = self.fanin0
        fanin1 = self.fanin1
        for node in range(1, self.num_nodes):
            f0 = fanin0[node]
            if f0 == self._PI_SENTINEL:
                continue
            f1 = fanin1[node]
            a = values[f0 >> 1]
            if f0 & 1:
                a = ~a
            b = values[f1 >> 1]
            if f1 & 1:
                b = ~b
            values[node] = a & b
        return values

    def literal_value(self, values, literal):
        value = values[node_of(literal)]
        if sign_of(literal):
            value = ~value
        return value

    def eval_literals(self, literals, input_values):
        """Evaluate the given literals for one assignment of PI booleans."""
        packed = {
            node: (np.uint64(0xFFFFFFFFFFFFFFFF) if value else np.uint64(0))
            for node, value in input_values.items()
        }
        values = self.simulate(packed)
        return [bool(self.literal_value(values, lit) & np.uint64(1))
                for lit in literals]

    # -- truth tables (for LUT extraction) -----------------------------------

    def cut_truth_table(self, root_literal, leaves):
        """Truth table of ``root_literal`` as a function of ``leaves``.

        ``leaves`` is an ordered list of node indices (<= 16 supported);
        returns an int whose bit ``i`` is the output for input assignment
        ``i`` (leaf 0 = least significant selector bit).
        """
        if len(leaves) > 16:
            raise SynthesisError("cut too wide for truth-table extraction")
        n = len(leaves)
        rows = 1 << n
        # evaluate all rows bit-parallel, 64 rows per word
        leaf_index = {leaf: i for i, leaf in enumerate(leaves)}
        table = 0
        for base in range(0, rows, 64):
            count = min(64, rows - base)
            inputs = {}
            for leaf, position in leaf_index.items():
                word = 0
                for row in range(count):
                    if (base + row) >> position & 1:
                        word |= 1 << row
                inputs[leaf] = np.uint64(word)
            values = self._simulate_cone(root_literal, leaves, inputs)
            word = int(values)
            for row in range(count):
                if word >> row & 1:
                    table |= 1 << (base + row)
        return table

    def _simulate_cone(self, root_literal, leaves, inputs):
        """Simulate the cone of ``root_literal`` with leaves as PIs."""
        root = node_of(root_literal)
        leaf_set = set(leaves)
        order = []
        seen = set(leaf_set) | {0}
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in seen:
                continue
            if expanded:
                seen.add(node)
                order.append(node)
                continue
            stack.append((node, True))
            if not (self.is_input(node) or self.is_const(node)):
                stack.append((node_of(self.fanin0[node]), False))
                stack.append((node_of(self.fanin1[node]), False))
        values = {0: np.uint64(0)}
        for leaf in leaves:
            values[leaf] = inputs.get(leaf, np.uint64(0))
        for node in order:
            if self.is_input(node):
                # an original PI inside the cone must be a declared leaf
                raise SynthesisError(
                    f"cone of literal {root_literal} escapes its leaves"
                )
            f0 = self.fanin0[node]
            f1 = self.fanin1[node]
            a = values[node_of(f0)]
            if sign_of(f0):
                a = ~a
            b = values[node_of(f1)]
            if sign_of(f1):
                b = ~b
            values[node] = a & b
        result = values[root]
        if sign_of(root_literal):
            result = ~result
        return result
