"""Cycle-accurate simulation of :class:`~repro.hw.rtl.Circuit` objects.

The simulator drives a circuit one byte per cycle — exactly the paper's
processing model — and records the named outputs.  It is intentionally a
straightforward interpreter over the AIG (verification tool, not the
dataset-scale evaluation path; that is ``repro.core``'s job).
"""

from __future__ import annotations

import numpy as np


class CycleSimulator:
    """Simulates a synchronous circuit cycle by cycle.

    By convention the circuits in this library have a ``byte`` input vector
    (8 bits, LSB first) plus optional scalar control inputs; use
    :meth:`run_stream` for the common "feed these bytes" case.
    """

    def __init__(self, circuit):
        self.circuit = circuit
        self.reset()

    def reset(self):
        self.state = {
            register.current: register.init
            for register in self.circuit.registers
        }

    def step(self, input_values):
        """Advance one clock edge.

        Args:
            input_values: dict mapping port names to ints/bools.  Vector
                ports take integers (bit 0 = LSB).
        Returns:
            dict of output port name -> bool, sampled *before* the edge
            (i.e. the Mealy outputs for this cycle's inputs).
        """
        aig = self.circuit.aig
        assignment = {}
        for register_literal, value in self.state.items():
            assignment[register_literal >> 1] = bool(value)
        for name, port in self.circuit.inputs.items():
            value = input_values.get(name, 0)
            if hasattr(port, "bits"):
                for position, bit_literal in enumerate(port.bits):
                    assignment[bit_literal >> 1] = bool(value >> position & 1)
            else:
                assignment[port >> 1] = bool(value)

        packed = {
            node: np.uint64(0xFFFFFFFFFFFFFFFF) if val else np.uint64(0)
            for node, val in assignment.items()
        }
        values = aig.simulate(packed)

        def literal_bool(literal):
            return bool(aig.literal_value(values, literal) & np.uint64(1))

        outputs = {
            name: literal_bool(literal)
            for name, literal in self.circuit.outputs.items()
        }
        next_state = {
            register.current: literal_bool(register.next)
            for register in self.circuit.registers
        }
        self.state = next_state
        return outputs

    def run_stream(self, data, extra_inputs=None, watch=None):
        """Feed ``data`` one byte per cycle.

        Args:
            data: bytes or str.
            extra_inputs: constant values for non-byte ports.
            watch: output names to record per cycle (default: all).
        Returns:
            dict of output name -> list of per-cycle bools.
        """
        if isinstance(data, str):
            data = data.encode("utf-8", errors="surrogateescape")
        names = watch if watch is not None else list(self.circuit.outputs)
        trace = {name: [] for name in names}
        base = dict(extra_inputs or {})
        for byte in data:
            base["byte"] = byte
            outputs = self.step(base)
            for name in names:
                trace[name].append(outputs[name])
        return trace

    def peek(self, register_name):
        """Current value of a named register (for debugging)."""
        for register in self.circuit.registers:
            if register.name == register_name:
                return self.state[register.current]
        raise KeyError(register_name)
