"""Structural-awareness circuits (paper §III-C).

The paper extracts a *small* amount of JSON structure while scanning:

* a **string mask** — track whether the scanner is inside a JSON string,
  which requires tracking ``\\`` escapes (and ``\\\\``), so that brackets
  inside string values do not corrupt the nesting level;
* a **nesting-level counter** — increment on unmasked ``{``/``[``,
  decrement on unmasked ``}``/``]``;
* a **scope combiner** — two primitives' results are only ANDed when both
  fired inside the same structural scope; the flags are latched per scope
  and cleared whenever a scope closes (an unmasked closing bracket).

This is deliberately approximate (flags set at *different* depths can
still combine — a rare false-positive source) but can never mask a real
match, preserving the no-false-negatives guarantee.
"""

from __future__ import annotations

from ..aig import FALSE


class StructuralSignals:
    """Named literals produced by the shared structural tracker."""

    __slots__ = ("in_string", "masked", "open_bracket", "close_bracket",
                 "comma", "depth")

    def __init__(self, in_string, masked, open_bracket, close_bracket,
                 comma, depth):
        self.in_string = in_string
        self.masked = masked
        self.open_bracket = open_bracket
        self.close_bracket = close_bracket
        self.comma = comma
        self.depth = depth


def add_structural_tracker(circuit, byte, record_reset=FALSE,
                           depth_bits=5):
    """Build the shared string-mask + nesting tracker into ``circuit``.

    Returns a :class:`StructuralSignals` bundle.  Instantiated at most once
    per composed raw filter; every structural group shares it (its cost is
    therefore paid once, which is visible in the paper's Pareto tables as
    the jump from the first structural configuration onwards).
    """
    aig = circuit.aig

    in_string = circuit.add_register("struct.in_string")
    escaped = circuit.add_register("struct.escaped")

    is_quote = byte.eq_const(ord('"'))
    is_backslash = byte.eq_const(ord("\\"))

    toggle_quote = aig.and_reduce([is_quote, aig.lnot(escaped)])
    next_in_string = aig.lxor(in_string, toggle_quote)
    next_in_string = aig.land(next_in_string, aig.lnot(record_reset))
    circuit.set_next(in_string, next_in_string)

    # escaped is set by an unescaped backslash and always consumed by the
    # following character (handles \\" and \\\\); tracked independently of
    # string state, which is equivalent on well-formed JSON and keeps all
    # three implementations (gate/scalar/vectorised) bit-identical
    next_escaped = aig.land(is_backslash, aig.lnot(escaped))
    next_escaped = aig.land(next_escaped, aig.lnot(record_reset))
    circuit.set_next(escaped, next_escaped)

    masked = in_string
    unmasked = aig.lnot(masked)

    is_open = aig.lor(byte.eq_const(ord("{")), byte.eq_const(ord("[")))
    is_close = aig.lor(byte.eq_const(ord("}")), byte.eq_const(ord("]")))
    is_comma = byte.eq_const(ord(","))

    open_bracket = aig.land(unmasked, is_open)
    close_bracket = aig.land(unmasked, is_close)
    comma = aig.land(unmasked, is_comma)

    depth = circuit.add_register_vector("struct.depth", depth_bits)
    incremented = depth.increment()
    decremented = depth.decrement()
    at_zero = depth.is_zero()
    next_depth = depth.mux(open_bracket, incremented)
    # never decrement below zero (malformed input robustness)
    safe_decrement = decremented.mux(at_zero, depth)
    next_depth = next_depth.mux(
        aig.land(close_bracket, aig.lnot(open_bracket)), safe_decrement
    )
    zero = circuit.constant_vector(depth_bits, 0)
    next_depth = next_depth.mux(record_reset, zero)
    circuit.set_next_vector(depth, next_depth)

    return StructuralSignals(
        in_string=in_string,
        masked=masked,
        open_bracket=open_bracket,
        close_bracket=close_bracket,
        comma=comma,
        depth=depth,
    )


def structural_group(circuit, signals, child_fires, record_reset=FALSE,
                     name="group", comma_scoped=False):
    """Combine child primitives so they must fire in the same scope.

    ``{RF1 & RF2}`` in the paper's notation.  Per child a latch remembers
    "fired inside the current scope".  On every scope-closing event the
    AND of (latch | firing right now) is sampled — a number filter's fire
    coincides with the closing bracket that delimits its token, so the
    current-cycle fire must participate — and the latches are cleared.

    Args:
        comma_scoped: if true, unmasked commas also close the scope
            (key-value co-occurrence per §III-C); default is bracket
            scoping, which the paper's evaluation uses for SenML objects.
    Returns:
        a sticky literal: "some scope in this record satisfied all
        children".
    """
    aig = circuit.aig
    scope_close = signals.close_bracket
    if comma_scoped:
        scope_close = aig.lor(scope_close, signals.comma)

    effective = []
    clear = aig.lor(scope_close, record_reset)
    for index, fire in enumerate(child_fires):
        latch = circuit.add_register(f"{name}.flag{index}")
        circuit.set_next(
            latch, aig.land(aig.lor(latch, fire), aig.lnot(clear))
        )
        effective.append(aig.lor(latch, fire))

    group_fire = aig.land(scope_close, aig.and_reduce(effective))
    return circuit.sticky(f"{name}.match", group_fire, record_reset)
