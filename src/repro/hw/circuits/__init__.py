"""Synthesizable circuit generators for every raw-filter primitive.

Each generator returns a :class:`repro.hw.rtl.Circuit` that processes one
byte per cycle.  The standard port convention is:

* input  ``byte``         — 8-bit input character (LSB first)
* input  ``record_reset`` — pulse to clear all per-record state
* output ``fire``         — combinational "primitive matched this cycle"
* output ``match``        — sticky per-record accept flag

LUT counts in the paper's tables correspond to ``circuit.lut_count()``.
"""

from .dfa_circuit import dfa_state_machine, number_filter_circuit
from .string_circuits import (
    dfa_string_matcher_circuit,
    full_matcher_circuit,
    substring_matcher_circuit,
)
from .structural_circuit import (
    StructuralSignals,
    add_structural_tracker,
    structural_group,
)
from .compose_circuit import build_raw_filter_circuit

__all__ = [
    "dfa_state_machine",
    "number_filter_circuit",
    "dfa_string_matcher_circuit",
    "full_matcher_circuit",
    "substring_matcher_circuit",
    "StructuralSignals",
    "add_structural_tracker",
    "structural_group",
    "build_raw_filter_circuit",
]
