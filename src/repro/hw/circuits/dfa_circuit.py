"""DFA-to-circuit synthesis (paper §III-B step 2, and string technique i).

:func:`dfa_state_machine` lowers any :class:`repro.regex.dfa.DFA` into a
binary-encoded state register plus next-state logic.  Transition edges are
grouped by (state, target) into character classes, each decoded once from
the 8-bit input via range comparators; structural hashing in the AIG then
shares decoder logic across states exactly the way a synthesis tool would.

:func:`number_filter_circuit` wraps a value-range DFA with the paper's
token framing: the automaton advances on numeric-token characters
(digits, ``+ - . e E``) and is *evaluated and reset* on every non-numeric
character — "it has to mark the end of the number".
"""

from __future__ import annotations

from ...errors import SynthesisError
from ...regex.charclass import CharClass
from ..aig import FALSE, TRUE
from ..rtl import Circuit


_ENCODING_CACHE = {}


def _dfa_cache_key(dfa):
    return (dfa.table.tobytes(), dfa.accepting.tobytes(), dfa.start)


def choose_encoding(dfa):
    """Pick the cheaper state encoding by trial synthesis (cached).

    Mirrors what a synthesis tool's FSM extraction does: try binary and
    one-hot, keep whichever maps to fewer LUTs.
    """
    key = _dfa_cache_key(dfa)
    cached = _ENCODING_CACHE.get(key)
    if cached is not None:
        return cached
    counts = {}
    for encoding in ("binary", "onehot"):
        scratch = Circuit("encoding_probe")
        byte = scratch.add_input_vector("byte", 8)
        reset = scratch.add_input("reset")
        _, accepting, accepting_after = dfa_state_machine(
            scratch, dfa, byte, reset=reset, encoding=encoding
        )
        scratch.add_output("accepting", accepting)
        scratch.add_output("accepting_after", accepting_after)
        counts[encoding] = scratch.lut_count()
    chosen = min(counts, key=counts.get)
    _ENCODING_CACHE[key] = chosen
    return chosen


def dfa_state_machine(circuit, dfa, byte, enable=None, reset=FALSE,
                      name="dfa", encoding="auto"):
    """Instantiate a DFA as a synchronous state machine inside ``circuit``.

    Args:
        circuit: the :class:`~repro.hw.rtl.Circuit` to build into.
        dfa: a complete :class:`~repro.regex.dfa.DFA`.
        byte: 8-bit input BitVec.
        enable: literal; when false the state holds (default: always on).
        reset: literal; when true the state returns to the start state
            (dominates ``enable``).
        name: prefix for the state registers.
        encoding: ``"binary"``, ``"onehot"``, or ``"auto"`` (trial-map
            both and keep the cheaper one, like FSM re-encoding in a real
            synthesis flow).
    Returns:
        (state_bits, accepting_literal, accepting_after) — the current
        state registers, a literal true while the register holds an
        accepting state (Moore), and a literal true when the state *after
        consuming this cycle's byte* is accepting (Mealy; ignores reset).
    """
    dfa = dfa.hardware_reordered()
    if encoding == "auto":
        encoding = choose_encoding(dfa)
    if encoding == "binary":
        return _binary_state_machine(circuit, dfa, byte, enable, reset, name)
    if encoding == "onehot":
        return _onehot_state_machine(circuit, dfa, byte, enable, reset, name)
    raise SynthesisError(f"unknown FSM encoding {encoding!r}")


def _binary_state_machine(circuit, dfa, byte, enable, reset, name):
    """Binary (logarithmic) state encoding, as §III-A describes for DFAs.

    State code 0 is the most-targeted state (see
    :meth:`~repro.regex.dfa.DFA.hardware_reordered`), so the default
    transition contributes no next-state logic.
    """
    aig = circuit.aig
    num_states = dfa.num_states
    width = max(1, (num_states - 1).bit_length())
    state = circuit.add_register_vector(f"{name}.state", width,
                                        init=dfa.start)

    select = [state.eq_const(code) for code in range(num_states)]

    edges = dfa.transition_classes()
    next_bits = []
    for bit in range(width):
        terms = []
        for source in range(num_states):
            for target, charclass in edges[source].items():
                if target >> bit & 1:
                    decoded = circuit.byte_in_class(byte, charclass)
                    terms.append(aig.land(select[source], decoded))
        next_bits.append(aig.or_reduce(terms))
    stepped = circuit.new_vector(next_bits)

    computed = stepped
    if enable is not None:
        computed = state.mux(enable, computed)
    start_vec = circuit.constant_vector(width, dfa.start)
    computed = computed.mux(reset, start_vec)
    circuit.set_next_vector(state, computed)

    accepting_states = [code for code in range(num_states)
                        if dfa.is_accepting(code)]
    accepting = aig.or_reduce([select[code] for code in accepting_states])
    accepting_after = aig.or_reduce(
        [stepped.eq_const(code) for code in accepting_states]
    )
    return state.bits, accepting, accepting_after


def _onehot_state_machine(circuit, dfa, byte, enable, reset, name):
    """One-hot state encoding with an implicit (one-cold) default state.

    State 0 — the most-targeted state — has no register: it is active when
    no other state bit is set, so the many transitions into it cost
    nothing, and each remaining state's next function is a small OR of
    (source AND class) terms.
    """
    aig = circuit.aig
    num_states = dfa.num_states

    registers = {
        code: circuit.add_register(f"{name}.s{code}",
                                   init=(code == dfa.start))
        for code in range(1, num_states)
    }
    others = list(registers.values())
    select = {0: aig.lnot(aig.or_reduce(others))}
    select.update(registers)

    edges = dfa.transition_classes()
    incoming = {code: [] for code in range(1, num_states)}
    for source in range(num_states):
        for target, charclass in edges[source].items():
            if target == 0:
                continue
            decoded = circuit.byte_in_class(byte, charclass)
            incoming[target].append(aig.land(select[source], decoded))

    stepped = {
        code: aig.or_reduce(terms) for code, terms in incoming.items()
    }
    for code in range(1, num_states):
        computed = stepped[code]
        if enable is not None:
            computed = aig.mux(enable, computed, registers[code])
        is_start = TRUE if code == dfa.start else FALSE
        computed = aig.mux(reset, is_start, computed)
        circuit.set_next(registers[code], computed)

    accepting_states = [code for code in range(num_states)
                        if dfa.is_accepting(code)]
    accepting = aig.or_reduce(
        [select[code] for code in accepting_states]
    )
    stepped[0] = aig.lnot(
        aig.or_reduce([stepped[code] for code in range(1, num_states)])
    )
    accepting_after = aig.or_reduce(
        [stepped[code] for code in accepting_states]
    )
    state_bits = [registers[code] for code in range(1, num_states)]
    return state_bits, accepting, accepting_after


def add_number_filter(circuit, byte, record_reset, dfa, name="number"):
    """Build a value-range filter around a number DFA (paper §III-B).

    Returns ``(fire, match)``.  Each cycle:

    * numeric-token byte → the DFA advances;
    * any other byte     → the token (if any) has just ended: ``fire`` if
      the DFA rests in an accepting state, then the DFA resets to start.

    The record must be terminated by a non-numeric byte (the harness and
    the composed filter frame records with ``\\n``) so a trailing number
    is still evaluated.
    """
    if dfa.is_accepting(dfa.start):
        raise SynthesisError(
            "number DFA accepts the empty token; range regexes never do"
        )
    aig = circuit.aig
    is_token_char = circuit.byte_in_class(
        byte, CharClass.number_token_chars()
    )
    delimiter = aig.lnot(is_token_char)

    # advance while inside a token; reset to start on any delimiter.
    # No hold/enable path is needed: the delimiter cycles are exactly the
    # cycles the reset covers.
    _, accepting, _ = dfa_state_machine(
        circuit,
        dfa,
        byte,
        reset=aig.lor(delimiter, record_reset),
        name=name,
    )

    fire = aig.land(delimiter, accepting)
    match = circuit.sticky(f"{name}.match", fire, record_reset)
    return fire, match


def number_filter_circuit(dfa, name="number"):
    """Standalone value-range raw filter circuit (standard ports)."""
    circuit = Circuit(f"number_filter<{name}>")
    byte = circuit.add_input_vector("byte", 8)
    record_reset = circuit.add_input("record_reset")
    fire, match = add_number_filter(circuit, byte, record_reset, dfa, name)
    circuit.add_output("fire", fire)
    circuit.add_output("match", match)
    return circuit
