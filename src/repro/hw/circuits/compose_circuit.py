"""Lower a raw-filter expression tree to one synthesizable circuit.

:func:`build_raw_filter_circuit` walks a :mod:`repro.core.composition`
tree and instantiates every primitive into a single shared circuit:

* one ``byte`` input feeds all primitives (one byte per cycle);
* the structural tracker (string mask + nesting counter) is built once
  and shared by all groups, matching Fig. 4's per-lane organisation;
* the top of the tree is a boolean combination of sticky per-record
  flags, sampled by the host at end of record via the ``accept`` output.

``circuit.lut_count()`` of the result is the "Total LUTs" axis of Fig. 3
and the LUT column of Tables V-VII.
"""

from __future__ import annotations

from ...errors import SynthesisError
from ..rtl import Circuit
from .dfa_circuit import add_number_filter
from .string_circuits import (
    add_dfa_string_matcher,
    add_full_matcher,
    add_substring_matcher,
)
from .structural_circuit import add_structural_tracker, structural_group


def _contains_group(expr):
    from ...core.composition import Group

    if isinstance(expr, Group):
        return True
    children = getattr(expr, "children", ())
    return any(_contains_group(child) for child in children)


def build_raw_filter_circuit(expr, name="raw_filter"):
    """Build the complete per-lane raw-filter circuit for ``expr``.

    Returns a :class:`~repro.hw.rtl.Circuit` with ports ``byte``,
    ``record_reset`` and output ``accept`` (the sticky record-level match,
    to be sampled after the record's final byte).
    """
    from ...core import composition as comp

    circuit = Circuit(name)
    byte = circuit.add_input_vector("byte", 8)
    record_reset = circuit.add_input("record_reset")

    signals = None
    if _contains_group(expr):
        signals = add_structural_tracker(circuit, byte, record_reset)

    counters = {"string": 0, "number": 0, "regex": 0, "group": 0}

    def add_primitive(node):
        """Instantiate one primitive; returns (fire, sticky_match)."""
        if isinstance(node, comp.StringPredicate):
            index = counters["string"]
            counters["string"] += 1
            label = f"str{index}"
            from ...core.string_match import DFA_TECHNIQUE, FULL

            if node.block == DFA_TECHNIQUE:
                return add_dfa_string_matcher(
                    circuit, byte, record_reset, node.needle, name=label
                )
            if node.block == FULL:
                return add_full_matcher(
                    circuit, byte, record_reset, node.needle, name=label
                )
            return add_substring_matcher(
                circuit, byte, record_reset, node.needle, node.block,
                name=label,
            )
        if isinstance(node, comp.NumberPredicate):
            index = counters["number"]
            counters["number"] += 1
            return add_number_filter(
                circuit, byte, record_reset, node.dfa, name=f"num{index}"
            )
        if isinstance(node, comp.RegexPredicate):
            index = counters["regex"]
            counters["regex"] += 1
            if node.token_mode == "number":
                return add_number_filter(
                    circuit, byte, record_reset, node.dfa,
                    name=f"re{index}",
                )
            from .dfa_circuit import dfa_state_machine

            _, _, accepting_after = dfa_state_machine(
                circuit, node.dfa, byte, reset=record_reset,
                name=f"re{index}",
            )
            return accepting_after, accepting_after
        raise SynthesisError(f"unknown primitive {node!r}")

    def lower(node):
        """Returns the record-level (sticky) literal for a subtree."""
        if isinstance(node, comp.Primitive):
            _, match = add_primitive(node)
            return match
        if isinstance(node, comp.Group):
            index = counters["group"]
            counters["group"] += 1
            fires = [add_primitive(child)[0] for child in node.children]
            return structural_group(
                circuit,
                signals,
                fires,
                record_reset=record_reset,
                name=f"grp{index}",
                comma_scoped=node.comma_scoped,
            )
        if isinstance(node, comp.And):
            literals = [lower(child) for child in node.children]
            return circuit.aig.and_reduce(literals)
        if isinstance(node, comp.Or):
            literals = [lower(child) for child in node.children]
            return circuit.aig.or_reduce(literals)
        raise SynthesisError(f"unknown raw-filter node {node!r}")

    accept = lower(expr)
    circuit.add_output("accept", accept)
    return circuit
