"""String-matcher circuits (paper §III-A, Fig. 1).

Three techniques are generated, matching the paper's (i)/(ii)/(iii):

* :func:`dfa_string_matcher_circuit` — technique (i): a DFA that accepts
  ``.*needle.*`` (the classic KMP automaton with an absorbing accept),
  binary state encoding, one character per cycle;
* :func:`full_matcher_circuit` — technique (ii): buffer the last N bytes
  and compare against the whole needle every cycle;
* :func:`substring_matcher_circuit` — technique (iii): buffer only the
  last B bytes, compare against *all* B-grams of the needle, OR-reduce,
  and count consecutive hits; fire at ``N - B + 1`` (Fig. 1).

Each matcher exists in two forms: ``add_*`` builds the logic into an
existing circuit (used when composing a full raw filter that shares one
byte input) and the ``*_circuit`` wrappers produce a standalone circuit
with the standard ``byte``/``record_reset``/``fire``/``match`` ports.
"""

from __future__ import annotations

from ...errors import SynthesisError
from ...regex.ast import concat, lit, star
from ...regex.charclass import CharClass
from ...regex.dfa import DFA
from ..rtl import Circuit
from .dfa_circuit import dfa_state_machine


def _as_bytes(needle):
    if isinstance(needle, str):
        return needle.encode("utf-8")
    return bytes(needle)


def ngrams(needle, block):
    """All B-grams of the needle, in order (duplicates preserved).

    Mirrors the paper's Table IV: ``ngrams("temperature", 2)`` yields
    ``b'te', b'em', b'mp', ...``.
    """
    data = _as_bytes(needle)
    if not 1 <= block <= len(data):
        raise SynthesisError(
            f"block length {block} invalid for needle of {len(data)} bytes"
        )
    return [data[i : i + block] for i in range(len(data) - block + 1)]


def _bit_length(value):
    return max(1, value.bit_length())


def add_substring_matcher(circuit, byte, record_reset, needle, block,
                          name=None):
    """Build technique (iii) into ``circuit``; returns ``(fire, match)``.

    The window holds the current byte plus the previous ``block - 1``
    bytes.  Every cycle it is compared against every B-gram of the needle;
    the OR of the comparators drives a saturating run counter which fires
    once ``N - B + 1`` consecutive window hits have been seen (Fig. 1
    shows the counter/register arrangement for B = 2).
    """
    data = _as_bytes(needle)
    block = int(block)
    grams = sorted(set(ngrams(data, block)))
    threshold = len(data) - block + 1
    if name is None:
        name = f"s{block}_{data.decode('latin1')}"
    aig = circuit.aig

    # window[0] = current byte, window[age] = byte ``age`` cycles ago
    window = [byte]
    previous = byte
    for age in range(1, block):
        stage = circuit.add_register_vector(f"{name}.buf{age}", 8)
        circuit.set_next_vector(stage, previous)
        window.append(stage)
        previous = stage

    hits = []
    for gram in grams:
        terms = []
        for age, expected in enumerate(reversed(gram)):
            terms.append(window[age].eq_const(expected))
        hits.append(aig.and_reduce(terms))
    window_hit = aig.or_reduce(hits)

    counter_width = _bit_length(threshold)
    counter = circuit.add_register_vector(f"{name}.run", counter_width)
    zero = circuit.constant_vector(counter_width, 0)
    at_threshold = counter.eq_const(threshold)
    # run length including this cycle, saturated at the threshold
    capped_increment = counter.increment().mux(at_threshold, counter)
    current_run = zero.mux(window_hit, capped_increment)
    fire = current_run.eq_const(threshold)
    next_counter = current_run.mux(record_reset, zero)
    circuit.set_next_vector(counter, next_counter)
    match = circuit.sticky(f"{name}.match", fire, record_reset)
    return fire, match


def add_full_matcher(circuit, byte, record_reset, needle, name=None):
    """Technique (ii): full N-byte comparison — ``B = N`` special case."""
    data = _as_bytes(needle)
    if name is None:
        name = f"full_{data.decode('latin1')}"
    return add_substring_matcher(
        circuit, byte, record_reset, data, len(data), name=name
    )


def add_dfa_string_matcher(circuit, byte, record_reset, needle, name=None):
    """Technique (i): DFA accepting any stream containing the needle.

    The minimal DFA of ``.* needle .*`` is the KMP automaton of the needle
    (N + 1 states, absorbing accept), synthesised with binary state
    encoding.  The absorbing accept makes the output naturally sticky, so
    ``fire`` and ``match`` coincide.
    """
    data = _as_bytes(needle)
    if name is None:
        name = f"dfa_{data.decode('latin1')}"
    pattern = concat(
        star(lit(CharClass.full())),
        lit(data.decode("latin1")),
        star(lit(CharClass.full())),
    )
    dfa = DFA.from_regex(pattern)
    _, _, accepting_after = dfa_state_machine(
        circuit, dfa, byte, reset=record_reset, name=name
    )
    return accepting_after, accepting_after


def substring_matcher_circuit(needle, block):
    """Standalone circuit for technique (iii)."""
    data = _as_bytes(needle)
    circuit = Circuit(f"substring<{data.decode('latin1')!r},B={block}>")
    byte = circuit.add_input_vector("byte", 8)
    record_reset = circuit.add_input("record_reset")
    fire, match = add_substring_matcher(
        circuit, byte, record_reset, data, block
    )
    circuit.add_output("fire", fire)
    circuit.add_output("match", match)
    return circuit


def full_matcher_circuit(needle):
    """Standalone circuit for technique (ii)."""
    data = _as_bytes(needle)
    return substring_matcher_circuit(data, len(data))


def dfa_string_matcher_circuit(needle):
    """Standalone circuit for technique (i)."""
    data = _as_bytes(needle)
    circuit = Circuit(f"dfa_string<{data.decode('latin1')!r}>")
    byte = circuit.add_input_vector("byte", 8)
    record_reset = circuit.add_input("record_reset")
    fire, match = add_dfa_string_matcher(
        circuit, byte, record_reset, data
    )
    circuit.add_output("fire", fire)
    circuit.add_output("match", match)
    return circuit
