"""A small RTL construction layer on top of the AIG.

A :class:`Circuit` is a synchronous design: one AIG holds the combinational
cloud; registers are modelled as (current-state primary input, next-state
literal, reset value) triples.  Circuit generators build byte-per-cycle
filter pipelines with this API, and the same object is then

* **technology-mapped** (``circuit.lut_count()``) for the resource axis of
  the paper's plots, and
* **cycle-simulated** (:class:`repro.hw.gatesim.CycleSimulator`) to verify
  the gate-level behaviour against the behavioural models.

Only LUTs are reported as "resources", matching the paper (flip-flops are
abundant on 7-series FPGAs and the paper's tables count LUTs exclusively).
"""

from __future__ import annotations

from ..errors import SynthesisError
from .aig import AIG, FALSE, TRUE
from .lutmap import map_to_luts


class Register:
    """One flip-flop: current value is an AIG input, next value a literal."""

    __slots__ = ("name", "current", "next", "init")

    def __init__(self, name, current, init):
        self.name = name
        self.current = current  # AIG literal (a PI)
        self.next = None        # AIG literal, set via Circuit.set_next
        self.init = bool(init)


class BitVec:
    """An ordered list of AIG literals, least-significant bit first."""

    __slots__ = ("circuit", "bits")

    def __init__(self, circuit, bits):
        self.circuit = circuit
        self.bits = list(bits)

    def __len__(self):
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, index):
        picked = self.bits[index]
        if isinstance(index, slice):
            return BitVec(self.circuit, picked)
        return picked

    @property
    def aig(self):
        return self.circuit.aig

    # -- comparisons ---------------------------------------------------------

    def eq_const(self, value):
        """Literal that is true when this vector equals ``value``."""
        aig = self.aig
        terms = []
        for position, bit in enumerate(self.bits):
            if value >> position & 1:
                terms.append(bit)
            else:
                terms.append(aig.lnot(bit))
        if value >> len(self.bits):
            return FALSE
        return aig.and_reduce(terms)

    def eq(self, other):
        aig = self.aig
        if len(other) != len(self):
            raise SynthesisError("width mismatch in eq")
        terms = [aig.lxnor(a, b) for a, b in zip(self.bits, other.bits)]
        return aig.and_reduce(terms)

    def ge_const(self, value):
        """Unsigned comparison ``self >= value``."""
        aig = self.aig
        # self >= value  <=>  NOT (self < value)
        borrow = FALSE  # becomes true if self < value considering low bits
        for position, bit in enumerate(self.bits):
            v = (value >> position) & 1
            if v:
                # this bit of value is 1: self_bit 0 -> less; 1 -> keep
                borrow = aig.mux(bit, borrow, TRUE)
            else:
                # value bit 0: self_bit 1 -> greater (clears borrow)
                borrow = aig.mux(bit, FALSE, borrow)
        if value >> len(self.bits):
            return FALSE
        return aig.lnot(borrow)

    def le_const(self, value):
        aig = self.aig
        if value >> len(self.bits):
            return TRUE
        above = FALSE
        for position, bit in enumerate(self.bits):
            v = (value >> position) & 1
            if v:
                above = aig.mux(bit, above, FALSE)
            else:
                above = aig.mux(bit, TRUE, above)
        return aig.lnot(above)

    # -- arithmetic -----------------------------------------------------------

    def increment(self, enable=TRUE):
        """Returns self + enable (ripple-carry, saturating is NOT applied)."""
        aig = self.aig
        carry = enable
        out = []
        for bit in self.bits:
            out.append(aig.lxor(bit, carry))
            carry = aig.land(bit, carry)
        return BitVec(self.circuit, out)

    def decrement(self, enable=TRUE):
        aig = self.aig
        borrow = enable
        out = []
        for bit in self.bits:
            out.append(aig.lxor(bit, borrow))
            borrow = aig.land(aig.lnot(bit), borrow)
        return BitVec(self.circuit, out)

    def mux(self, sel, if_true):
        """Per-bit mux: sel ? if_true : self."""
        aig = self.aig
        if len(if_true) != len(self):
            raise SynthesisError("width mismatch in mux")
        return BitVec(
            self.circuit,
            [aig.mux(sel, t, f) for t, f in zip(if_true.bits, self.bits)],
        )

    def is_zero(self):
        return self.aig.lnot(self.aig.or_reduce(self.bits))

    @staticmethod
    def constant(circuit, width, value):
        bits = [TRUE if value >> i & 1 else FALSE for i in range(width)]
        return BitVec(circuit, bits)


class Circuit:
    """A synchronous netlist: AIG cloud + registers + named ports."""

    def __init__(self, name="circuit"):
        self.name = name
        self.aig = AIG()
        self.registers = []
        self._reg_by_literal = {}
        self.inputs = {}   # port name -> literal or BitVec
        self.outputs = {}  # port name -> literal

    # -- ports ----------------------------------------------------------------

    def add_input(self, name):
        literal = self.aig.add_input(name)
        self.inputs[name] = literal
        return literal

    def add_input_vector(self, name, width):
        vec = BitVec(
            self, [self.aig.add_input(f"{name}[{i}]") for i in range(width)]
        )
        self.inputs[name] = vec
        return vec

    def add_output(self, name, literal):
        self.outputs[name] = literal

    # -- state ----------------------------------------------------------------

    def add_register(self, name, init=False):
        current = self.aig.add_input(f"{name}.q")
        register = Register(name, current, init)
        self.registers.append(register)
        self._reg_by_literal[current] = register
        return current

    def add_register_vector(self, name, width, init=0):
        bits = [
            self.add_register(f"{name}[{i}]", init >> i & 1)
            for i in range(width)
        ]
        return BitVec(self, bits)

    def set_next(self, current_literal, next_literal):
        register = self._reg_by_literal.get(current_literal)
        if register is None:
            raise SynthesisError("set_next on a non-register literal")
        register.next = next_literal

    def set_next_vector(self, vec, next_vec):
        for current, nxt in zip(vec.bits, next_vec.bits):
            self.set_next(current, nxt)

    def new_vector(self, bits):
        return BitVec(self, bits)

    def constant_vector(self, width, value):
        return BitVec.constant(self, width, value)

    # -- convenience gates ----------------------------------------------------

    def sticky(self, name, set_literal, clear_literal=FALSE):
        """A set-dominant sticky flag register; returns its current literal.

        next = (current | set) & ~clear
        """
        current = self.add_register(name, init=False)
        aig = self.aig
        nxt = aig.land(aig.lor(current, set_literal), aig.lnot(clear_literal))
        self.set_next(current, nxt)
        return current

    def byte_equals(self, byte_vec, char):
        code = char if isinstance(char, int) else ord(char)
        return byte_vec.eq_const(code)

    def byte_in_class(self, byte_vec, charclass):
        """Membership literal for a CharClass, built from range comparators."""
        aig = self.aig
        terms = []
        for lo, hi in charclass.ranges():
            if lo == hi:
                terms.append(byte_vec.eq_const(lo))
            else:
                terms.append(
                    aig.land(byte_vec.ge_const(lo), byte_vec.le_const(hi))
                )
        return aig.or_reduce(terms)

    # -- analysis -------------------------------------------------------------

    def _root_literals(self):
        roots = []
        for register in self.registers:
            if register.next is None:
                raise SynthesisError(
                    f"register {register.name!r} has no next-state function"
                )
            roots.append(register.next)
        roots.extend(self.outputs.values())
        return roots

    def map_luts(self, k=6, mode="area"):
        return map_to_luts(self.aig, self._root_literals(), k=k, mode=mode)

    def lut_count(self, k=6):
        """Number of K-input LUTs after technology mapping (paper's metric)."""
        return self.map_luts(k=k).num_luts

    def ff_count(self):
        return len(self.registers)

    def stats(self, k=6):
        network = self.map_luts(k=k)
        return {
            "luts": network.num_luts,
            "ffs": self.ff_count(),
            "depth": network.depth,
            "aig_ands": self.aig.num_ands,
        }
