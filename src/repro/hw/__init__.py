"""Hardware substrate: AIG, LUT technology mapping, RTL, gate simulation.

This subpackage plays the role of the synthesis toolchain in the paper's
flow: primitive specifications become boolean networks (AIGs), which are
technology-mapped onto 6-input LUTs to obtain the resource numbers, and
cycle-simulated to verify gate-level behaviour against the behavioural
models in :mod:`repro.core`.
"""

from .aig import AIG, FALSE, TRUE
from .gatesim import CycleSimulator
from .lutmap import LUTNetwork, lut_count, map_to_luts, verify_mapping
from .rtl import BitVec, Circuit, Register

__all__ = [
    "AIG",
    "FALSE",
    "TRUE",
    "CycleSimulator",
    "LUTNetwork",
    "lut_count",
    "map_to_luts",
    "verify_mapping",
    "BitVec",
    "Circuit",
    "Register",
]
