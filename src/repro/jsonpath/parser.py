"""Strict recursive-descent JSON parser (the oracle's parsing stage).

``loads`` parses one document; ``iter_records`` parses a newline-delimited
stream, which is the record framing the whole evaluation uses (one JSON
record per line, as RiotBench-style ingestion produces).
"""

from __future__ import annotations

from ..errors import JSONParseError
from . import tokenizer as tk


class _Parser:
    def __init__(self, data):
        self.tokenizer = tk.Tokenizer(data)
        self.token = self.tokenizer.next_token()

    def _advance(self):
        self.token = self.tokenizer.next_token()

    def _expect(self, kind):
        if self.token.kind != kind:
            raise JSONParseError(
                f"expected {kind!r}, found {self.token.kind!r}",
                self.token.start,
            )
        value = self.token
        self._advance()
        return value

    def parse_document(self):
        value = self.parse_value()
        if self.token.kind != tk.EOF:
            raise JSONParseError("trailing data", self.token.start)
        return value

    def parse_value(self):
        kind = self.token.kind
        if kind == tk.LBRACE:
            return self._object()
        if kind == tk.LBRACKET:
            return self._array()
        if kind in (tk.STRING, tk.NUMBER, tk.TRUE, tk.FALSE, tk.NULL):
            value = self.token.value
            self._advance()
            return value
        raise JSONParseError(
            f"unexpected token {kind!r}", self.token.start
        )

    def _object(self):
        self._expect(tk.LBRACE)
        result = {}
        if self.token.kind == tk.RBRACE:
            self._advance()
            return result
        while True:
            key = self._expect(tk.STRING).value
            self._expect(tk.COLON)
            result[key] = self.parse_value()
            if self.token.kind == tk.COMMA:
                self._advance()
                continue
            self._expect(tk.RBRACE)
            return result

    def _array(self):
        self._expect(tk.LBRACKET)
        result = []
        if self.token.kind == tk.RBRACKET:
            self._advance()
            return result
        while True:
            result.append(self.parse_value())
            if self.token.kind == tk.COMMA:
                self._advance()
                continue
            self._expect(tk.RBRACKET)
            return result


def loads(data):
    """Parse one JSON document from bytes or str."""
    return _Parser(data).parse_document()


def iter_records(stream):
    """Parse a newline-delimited JSON stream, yielding (bytes, value).

    Blank lines are skipped.  This is the CPU-side parser a raw filter
    offloads: in the paper's architecture only records that survive the
    FPGA filter reach this code.
    """
    if isinstance(stream, str):
        stream = stream.encode("utf-8")
    for line in stream.split(b"\n"):
        if not line.strip():
            continue
        yield line, loads(line)
