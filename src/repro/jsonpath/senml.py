"""SenML (Sensor Measurement Lists) helpers.

The RiotBench SmartCity stream encodes each record as a SenML pack — an
array ``"e"`` of measurement objects ``{"v": value, "u": unit, "n": name}``
plus a base time ``"bt"`` (see the paper's Listing 1).  These helpers give
the exact oracle a typed view of such records.
"""

from __future__ import annotations

from .path import coerce_number


def measurements(record):
    """Iterate ``(name, numeric_value, unit)`` over a SenML record."""
    entries = record.get("e") if isinstance(record, dict) else None
    if not isinstance(entries, list):
        return
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        name = entry.get("n")
        value = coerce_number(entry.get("v"))
        unit = entry.get("u")
        if isinstance(name, str):
            yield name, value, unit


def measurement_value(record, name):
    """Numeric value of the measurement called ``name``, or None."""
    for found_name, value, _ in measurements(record):
        if found_name == name:
            return value
    return None


def base_time(record):
    """The pack's base time ``bt`` as a number, or None."""
    if isinstance(record, dict):
        return coerce_number(record.get("bt"))
    return None


def sensor_names(record):
    """Set of measurement names present in a record."""
    return {name for name, _, _ in measurements(record)}
