"""JSON substrate: strict parser, JSONPath subset, SenML helpers.

This package is the "CPU side" of the paper's architecture — the accurate
parser that raw filters front-end — implemented from scratch so the whole
system is self-contained.
"""

from .parser import iter_records, loads
from .path import coerce_number, compile_path
from .senml import base_time, measurement_value, measurements, sensor_names

__all__ = [
    "iter_records",
    "loads",
    "coerce_number",
    "compile_path",
    "base_time",
    "measurement_value",
    "measurements",
    "sensor_names",
]
