"""A JSONPath subset sufficient for the paper's queries.

Supports::

    $.field.sub
    $.array[*]            every element
    $.array[3]            index
    $.e[?(@.n == "temperature" & @.v >= 0.7 & @.v <= 35.1)]   filters

Filter predicates compare ``@.field`` against literals with
``== != < <= > >=`` and combine with ``&`` / ``&&`` (and ``|`` / ``||``).
Numeric comparisons coerce string values (SenML stores numbers as JSON
strings, e.g. ``"v":"35.2"``), mirroring how a real consumer of the
RiotBench streams evaluates the running-example query of Listing 2.
"""

from __future__ import annotations

from ..errors import JSONPathError


class _PathParser:
    def __init__(self, text):
        self.text = text
        self.pos = 0

    def error(self, message):
        raise JSONPathError(f"{message} (path={self.text!r}, pos={self.pos})")

    def peek(self):
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def eat(self, char):
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def expect(self, char):
        if not self.eat(char):
            self.error(f"expected {char!r}")

    def skip_ws(self):
        while self.peek() is not None and self.peek() in " \t":
            self.pos += 1

    # -- path grammar -------------------------------------------------------

    def parse(self):
        self.expect("$")
        steps = []
        while self.pos < len(self.text):
            if self.eat("."):
                steps.append(Field(self._identifier()))
            elif self.peek() == "[":
                steps.append(self._bracket())
            else:
                self.error("expected '.' or '['")
        return Path(self.text, steps)

    def _identifier(self):
        start = self.pos
        while self.peek() is not None and (
            self.peek().isalnum() or self.peek() == "_"
        ):
            self.pos += 1
        if start == self.pos:
            self.error("expected an identifier")
        return self.text[start : self.pos]

    def _bracket(self):
        self.expect("[")
        if self.eat("*"):
            self.expect("]")
            return Wildcard()
        if self.peek() == "?":
            self.pos += 1
            self.expect("(")
            predicate = self._or_expr()
            self.skip_ws()
            self.expect(")")
            self.expect("]")
            return Filter(predicate)
        start = self.pos
        while self.peek() is not None and self.peek() != "]":
            self.pos += 1
        index_text = self.text[start : self.pos].strip()
        self.expect("]")
        try:
            return Index(int(index_text))
        except ValueError:
            self.error(f"bad index {index_text!r}")

    # -- predicate grammar ---------------------------------------------------

    def _or_expr(self):
        terms = [self._and_expr()]
        while True:
            self.skip_ws()
            if self.eat("|"):
                self.eat("|")
                terms.append(self._and_expr())
            else:
                break
        if len(terms) == 1:
            return terms[0]
        return OrPred(terms)

    def _and_expr(self):
        terms = [self._comparison()]
        while True:
            self.skip_ws()
            if self.peek() == "&":
                self.pos += 1
                self.eat("&")
                terms.append(self._comparison())
            else:
                break
        if len(terms) == 1:
            return terms[0]
        return AndPred(terms)

    def _comparison(self):
        self.skip_ws()
        self.expect("@")
        self.expect(".")
        field = self._identifier()
        self.skip_ws()
        operator = self._operator()
        self.skip_ws()
        literal = self._literal()
        return Comparison(field, operator, literal)

    def _operator(self):
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                return op
        # the paper writes unicode comparison glyphs in queries
        for glyph, op in (("≤", "<="), ("≥", ">=")):
            if self.text.startswith(glyph, self.pos):
                self.pos += len(glyph)
                return op
        self.error("expected a comparison operator")

    def _literal(self):
        char = self.peek()
        if char in ('"', "'"):
            quote = char
            self.pos += 1
            start = self.pos
            while self.peek() is not None and self.peek() != quote:
                self.pos += 1
            value = self.text[start : self.pos]
            self.expect(quote)
            return value
        start = self.pos
        while self.peek() is not None and (
            self.peek().isdigit() or self.peek() in "+-.eE"
        ):
            self.pos += 1
        text = self.text[start : self.pos]
        if not text:
            self.error("expected a literal")
        try:
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        except ValueError:
            self.error(f"bad numeric literal {text!r}")


# -- AST ---------------------------------------------------------------------

class Field:
    def __init__(self, name):
        self.name = name

    def select(self, nodes):
        for node in nodes:
            if isinstance(node, dict) and self.name in node:
                yield node[self.name]


class Index:
    def __init__(self, index):
        self.index = index

    def select(self, nodes):
        for node in nodes:
            if isinstance(node, list) and -len(node) <= self.index < len(node):
                yield node[self.index]


class Wildcard:
    def select(self, nodes):
        for node in nodes:
            if isinstance(node, list):
                yield from node
            elif isinstance(node, dict):
                yield from node.values()


class Filter:
    def __init__(self, predicate):
        self.predicate = predicate

    def select(self, nodes):
        for node in nodes:
            if isinstance(node, list):
                for item in node:
                    if self.predicate.test(item):
                        yield item
            elif isinstance(node, dict):
                if self.predicate.test(node):
                    yield node


class Comparison:
    def __init__(self, field, operator, literal):
        self.field = field
        self.operator = operator
        self.literal = literal

    def test(self, node):
        if not isinstance(node, dict) or self.field not in node:
            return False
        value = node[self.field]
        literal = self.literal
        if isinstance(literal, (int, float)) and not isinstance(
            literal, bool
        ):
            value = coerce_number(value)
            if value is None:
                return False
        operator = self.operator
        try:
            if operator == "==":
                return value == literal
            if operator == "!=":
                return value != literal
            if operator == "<":
                return value < literal
            if operator == "<=":
                return value <= literal
            if operator == ">":
                return value > literal
            if operator == ">=":
                return value >= literal
        except TypeError:
            return False
        raise JSONPathError(f"unknown operator {operator!r}")


class AndPred:
    def __init__(self, terms):
        self.terms = terms

    def test(self, node):
        return all(term.test(node) for term in self.terms)


class OrPred:
    def __init__(self, terms):
        self.terms = terms

    def test(self, node):
        return any(term.test(node) for term in self.terms)


class Path:
    """A compiled JSONPath expression."""

    def __init__(self, text, steps):
        self.text = text
        self.steps = steps

    def select(self, document):
        """All nodes selected by this path from ``document``."""
        nodes = [document]
        for step in self.steps:
            nodes = list(step.select(nodes))
        return nodes

    def matches(self, document):
        """True when the path selects at least one node."""
        return bool(self.select(document))

    def __repr__(self):
        return f"Path({self.text!r})"


def compile_path(text):
    """Compile a JSONPath string into a :class:`Path`."""
    return _PathParser(text).parse()


def coerce_number(value):
    """Interpret a JSON value as a number if possible (SenML strings!)."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            if any(c in value for c in ".eE"):
                return float(value)
            return int(value)
        except ValueError:
            return None
    return None
