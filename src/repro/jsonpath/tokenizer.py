"""Tokenizer for the strict JSON parser.

Implemented from scratch (no ``json`` stdlib) because the exact oracle —
the CPU parser a raw filter front-ends — is part of the system the paper
assumes, and because tests cross-validate the structural tracker against
real token positions.
"""

from __future__ import annotations

from ..errors import JSONParseError

# token kinds
LBRACE, RBRACE, LBRACKET, RBRACKET = "{", "}", "[", "]"
COLON, COMMA = ":", ","
STRING, NUMBER, TRUE, FALSE, NULL, EOF = (
    "string", "number", "true", "false", "null", "eof"
)

_WHITESPACE = b" \t\n\r"
_ESCAPES = {
    ord('"'): '"',
    ord("\\"): "\\",
    ord("/"): "/",
    ord("b"): "\b",
    ord("f"): "\f",
    ord("n"): "\n",
    ord("r"): "\r",
    ord("t"): "\t",
}


class Token:
    __slots__ = ("kind", "value", "start", "end")

    def __init__(self, kind, value, start, end):
        self.kind = kind
        self.value = value
        self.start = start
        self.end = end

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.start})"


class Tokenizer:
    """Byte-oriented JSON tokenizer with position tracking."""

    def __init__(self, data):
        if isinstance(data, str):
            data = data.encode("utf-8")
        self.data = data
        self.pos = 0

    def error(self, message):
        raise JSONParseError(message, self.pos)

    def _skip_whitespace(self):
        data = self.data
        pos = self.pos
        while pos < len(data) and data[pos] in _WHITESPACE:
            pos += 1
        self.pos = pos

    def next_token(self):
        self._skip_whitespace()
        data = self.data
        pos = self.pos
        if pos >= len(data):
            return Token(EOF, None, pos, pos)
        byte = data[pos]
        char = chr(byte)
        if char in "{}[]:,":
            self.pos = pos + 1
            return Token(char, char, pos, pos + 1)
        if byte == ord('"'):
            return self._string()
        if byte == ord("-") or ord("0") <= byte <= ord("9"):
            return self._number()
        if data.startswith(b"true", pos):
            self.pos = pos + 4
            return Token(TRUE, True, pos, self.pos)
        if data.startswith(b"false", pos):
            self.pos = pos + 5
            return Token(FALSE, False, pos, self.pos)
        if data.startswith(b"null", pos):
            self.pos = pos + 4
            return Token(NULL, None, pos, self.pos)
        self.error(f"unexpected byte {byte:#04x}")

    def _string(self):
        data = self.data
        start = self.pos
        pos = start + 1
        pieces = []
        while True:
            if pos >= len(data):
                self.pos = pos
                self.error("unterminated string")
            byte = data[pos]
            if byte == ord('"'):
                pos += 1
                break
            if byte == ord("\\"):
                if pos + 1 >= len(data):
                    self.pos = pos
                    self.error("unterminated escape")
                escape = data[pos + 1]
                if escape in _ESCAPES:
                    pieces.append(_ESCAPES[escape])
                    pos += 2
                elif escape == ord("u"):
                    code, pos = self._unicode_escape(pos)
                    # combine UTF-16 surrogate pairs (RFC 8259 §7)
                    if 0xD800 <= code <= 0xDBFF and data.startswith(
                        b"\\u", pos
                    ):
                        low, low_end = self._unicode_escape(pos)
                        if 0xDC00 <= low <= 0xDFFF:
                            code = 0x10000 + (
                                (code - 0xD800) << 10
                            ) + (low - 0xDC00)
                            pos = low_end
                    pieces.append(chr(code))
                else:
                    self.pos = pos
                    self.error(f"bad escape \\{chr(escape)}")
            elif byte < 0x20:
                self.pos = pos
                self.error("control character in string")
            else:
                run_start = pos
                while (
                    pos < len(data)
                    and data[pos] != ord('"')
                    and data[pos] != ord("\\")
                    and data[pos] >= 0x20
                ):
                    pos += 1
                pieces.append(
                    data[run_start:pos].decode("utf-8", errors="replace")
                )
        self.pos = pos
        return Token(STRING, "".join(pieces), start, pos)

    def _unicode_escape(self, pos):
        """Decode ``\\uXXXX`` starting at ``pos``; returns (code, end)."""
        data = self.data
        hex_digits = data[pos + 2 : pos + 6]
        if len(hex_digits) != 4:
            self.pos = pos
            self.error("truncated \\u escape")
        try:
            code = int(hex_digits, 16)
        except ValueError:
            self.pos = pos
            self.error("bad \\u escape")
        return code, pos + 6

    def _number(self):
        data = self.data
        start = self.pos
        pos = start
        if data[pos] == ord("-"):
            pos += 1
        digit_start = pos
        while pos < len(data) and ord("0") <= data[pos] <= ord("9"):
            pos += 1
        if pos == digit_start:
            self.pos = pos
            self.error("number has no digits")
        if pos - digit_start > 1 and data[digit_start] == ord("0"):
            self.pos = digit_start
            self.error("leading zero in number")
        is_float = False
        if pos < len(data) and data[pos] == ord("."):
            is_float = True
            pos += 1
            frac_start = pos
            while pos < len(data) and ord("0") <= data[pos] <= ord("9"):
                pos += 1
            if pos == frac_start:
                self.pos = pos
                self.error("missing digits after decimal point")
        if pos < len(data) and data[pos] in (ord("e"), ord("E")):
            is_float = True
            pos += 1
            if pos < len(data) and data[pos] in (ord("+"), ord("-")):
                pos += 1
            exp_start = pos
            while pos < len(data) and ord("0") <= data[pos] <= ord("9"):
                pos += 1
            if pos == exp_start:
                self.pos = pos
                self.error("missing exponent digits")
        text = data[start:pos].decode("ascii")
        value = float(text) if is_float else int(text)
        self.pos = pos
        return Token(NUMBER, value, start, pos)
